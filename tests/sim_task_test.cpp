#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace dpnfs::sim {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.run(), 0u);
}

Task<void> record_after(Simulation& sim, Duration d, std::vector<Time>& out) {
  co_await sim.delay(d);
  out.push_back(sim.now());
}

TEST(Simulation, DelayAdvancesClock) {
  Simulation sim;
  std::vector<Time> times;
  sim.spawn(record_after(sim, ms(5), times));
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], ms(5));
  EXPECT_EQ(sim.now(), ms(5));
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<Time> times;
  sim.spawn(record_after(sim, ms(30), times));
  sim.spawn(record_after(sim, ms(10), times));
  sim.spawn(record_after(sim, ms(20), times));
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], ms(10));
  EXPECT_EQ(times[1], ms(20));
  EXPECT_EQ(times[2], ms(30));
}

Task<void> tagged(Simulation& sim, int tag, std::vector<int>& out) {
  co_await sim.yield();
  out.push_back(tag);
}

TEST(Simulation, EqualTimesFireInSpawnOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) sim.spawn(tagged(sim, i, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

Task<int> answer() { co_return 42; }

Task<int> chain() {
  int v = co_await answer();
  co_return v + 1;
}

Task<void> check_chain(bool& ok) {
  ok = (co_await chain()) == 43;
}

TEST(Task, ValueChainsThroughNestedAwaits) {
  Simulation sim;
  bool ok = false;
  sim.spawn(check_chain(ok));
  sim.run();
  EXPECT_TRUE(ok);
}

Task<int> thrower() {
  throw std::runtime_error("boom");
  co_return 0;  // unreachable
}

Task<void> catcher(bool& caught) {
  try {
    (void)co_await thrower();
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;
  sim.spawn(catcher(caught));
  sim.run();
  EXPECT_TRUE(caught);
}

Task<void> deep(Simulation& sim, int depth, int& leaf_hits) {
  if (depth == 0) {
    co_await sim.yield();
    ++leaf_hits;
    co_return;
  }
  co_await deep(sim, depth - 1, leaf_hits);
}

TEST(Task, DeepRecursionDoesNotOverflowStack) {
  Simulation sim;
  int hits = 0;
  sim.spawn(deep(sim, 50000, hits));
  sim.run();
  EXPECT_EQ(hits, 1);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<Time> times;
  sim.spawn(record_after(sim, ms(10), times));
  sim.spawn(record_after(sim, ms(100), times));
  EXPECT_FALSE(sim.run_until(ms(50)));
  EXPECT_EQ(times.size(), 1u);
  EXPECT_EQ(sim.now(), ms(50));
  EXPECT_TRUE(sim.run_until(ms(1000)));
  EXPECT_EQ(times.size(), 2u);
}

Task<void> sequential_delays(Simulation& sim, std::vector<Time>& out) {
  co_await sim.delay(ms(1));
  out.push_back(sim.now());
  co_await sim.delay(ms(2));
  out.push_back(sim.now());
  co_await sim.delay(ms(3));
  out.push_back(sim.now());
}

TEST(Simulation, SequentialDelaysAccumulate) {
  Simulation sim;
  std::vector<Time> times;
  sim.spawn(sequential_delays(sim, times));
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{ms(1), ms(3), ms(6)}));
}

TEST(Task, DroppedTaskNeverRunsAndDoesNotLeak) {
  Simulation sim;
  bool ran = false;
  {
    auto t = [](bool& r) -> Task<void> {
      r = true;
      co_return;
    }(ran);
    EXPECT_TRUE(t.valid());
    // destroyed unawaited
  }
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(us(1), 1000);
  EXPECT_EQ(ms(1), 1000000);
  EXPECT_EQ(sec(1), 1000000000);
  EXPECT_EQ(from_seconds(1.5), sec(1) + ms(500));
  EXPECT_DOUBLE_EQ(to_seconds(ms(1500)), 1.5);
}

TEST(TimeHelpers, DurationForBytes) {
  EXPECT_EQ(duration_for_bytes(0, 1e6), 0);
  EXPECT_EQ(duration_for_bytes(1'000'000, 1e6), sec(1));
  EXPECT_GE(duration_for_bytes(1, 1e12), 1);  // nonzero payload takes time
}

// --- Event-queue equivalence and memory bounds -----------------------------

namespace {

// A busy pseudo-random schedule: chains of delays at mixed magnitudes (same
// tick, sub-bucket, cross-bucket, and beyond the calendar horizon), each
// appending its marker when it fires.  Exercises every storage class of the
// calendar queue.
Task<void> chain(Simulation& sim, uint64_t seed, int hops,
                 std::vector<std::pair<Time, uint64_t>>& out) {
  uint64_t state = seed;
  for (int i = 0; i < hops; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // Delays from 0ns to ~67ms: zero-delay wakeups, intra-bucket,
    // inter-bucket, and overflow-heap territory.
    const Duration d = static_cast<Duration>(state % 67'000'000ULL);
    co_await sim.delay(d);
    out.emplace_back(sim.now(), seed * 1000 + static_cast<uint64_t>(i));
  }
}

std::vector<std::pair<Time, uint64_t>> run_schedule(QueueKind kind) {
  Simulation sim(kind);
  std::vector<std::pair<Time, uint64_t>> order;
  for (uint64_t c = 0; c < 32; ++c) {
    sim.spawn(chain(sim, c + 1, 64, order));
  }
  sim.run();
  return order;
}

}  // namespace

// The calendar queue is a drop-in replacement: both queue kinds must
// realize the exact same (time, seq) total order, so a run is bit-identical
// regardless of which core executed it.  This is what lets bench_scale
// compare wall-clock cost across cores on the same simulated result.
TEST(EventQueue, CalendarAndBinaryHeapRealizeIdenticalOrder) {
  const auto calendar = run_schedule(QueueKind::kCalendar);
  const auto heap = run_schedule(QueueKind::kBinaryHeap);
  ASSERT_EQ(calendar.size(), heap.size());
  EXPECT_EQ(calendar, heap);
}

// Queue storage must not ratchet: after a burst of events drains, the
// retained footprint shrinks back toward the steady state instead of
// keeping the high-water allocation forever (shrink hysteresis in the
// immediate ring and per-bucket heaps; oversized bucket storage is dropped
// on drain).
TEST(EventQueue, StorageShrinksAfterBurst) {
  for (QueueKind kind : {QueueKind::kCalendar, QueueKind::kBinaryHeap}) {
    Simulation sim(kind);
    std::vector<std::pair<Time, uint64_t>> sink;
    // 30k one-shot wakeups in a two-bucket window: the immediate ring grows
    // to hold every spawn, then two bucket heaps (or the binary heap) hold
    // every pending timer at once — every storage tier hits its high-water
    // mark before a single event fires.
    uint64_t fired = 0;
    for (uint64_t c = 0; c < 30'000; ++c) {
      sim.spawn([](Simulation& sim, uint64_t seed,
                   uint64_t& fired) -> Task<void> {
        co_await sim.delay(static_cast<Duration>(
            (seed * 6364136223846793005ULL + 1442695040888963407ULL) % 4096));
        ++fired;
      }(sim, c + 1, fired));
    }
    sim.run();
    ASSERT_EQ(fired, 30'000u);
    const size_t drained = sim.queue_memory_bytes();

    // A light follow-up load must not see the burst's footprint again.
    sim.spawn(chain(sim, 99, 8, sink));
    sim.run();
    const size_t steady = sim.queue_memory_bytes();

    // The structural floor (calendar bucket array / empty heap) plus a
    // bounded per-bucket cache: far below the burst's tens of thousands of
    // queued events (~MBs if retained).
    EXPECT_LT(drained, 1u << 21) << "kind " << static_cast<int>(kind);
    EXPECT_LT(steady, 1u << 21) << "kind " << static_cast<int>(kind);
  }
}

}  // namespace
}  // namespace dpnfs::sim
