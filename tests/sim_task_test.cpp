#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace dpnfs::sim {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.run(), 0u);
}

Task<void> record_after(Simulation& sim, Duration d, std::vector<Time>& out) {
  co_await sim.delay(d);
  out.push_back(sim.now());
}

TEST(Simulation, DelayAdvancesClock) {
  Simulation sim;
  std::vector<Time> times;
  sim.spawn(record_after(sim, ms(5), times));
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], ms(5));
  EXPECT_EQ(sim.now(), ms(5));
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<Time> times;
  sim.spawn(record_after(sim, ms(30), times));
  sim.spawn(record_after(sim, ms(10), times));
  sim.spawn(record_after(sim, ms(20), times));
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], ms(10));
  EXPECT_EQ(times[1], ms(20));
  EXPECT_EQ(times[2], ms(30));
}

Task<void> tagged(Simulation& sim, int tag, std::vector<int>& out) {
  co_await sim.yield();
  out.push_back(tag);
}

TEST(Simulation, EqualTimesFireInSpawnOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) sim.spawn(tagged(sim, i, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

Task<int> answer() { co_return 42; }

Task<int> chain() {
  int v = co_await answer();
  co_return v + 1;
}

Task<void> check_chain(bool& ok) {
  ok = (co_await chain()) == 43;
}

TEST(Task, ValueChainsThroughNestedAwaits) {
  Simulation sim;
  bool ok = false;
  sim.spawn(check_chain(ok));
  sim.run();
  EXPECT_TRUE(ok);
}

Task<int> thrower() {
  throw std::runtime_error("boom");
  co_return 0;  // unreachable
}

Task<void> catcher(bool& caught) {
  try {
    (void)co_await thrower();
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;
  sim.spawn(catcher(caught));
  sim.run();
  EXPECT_TRUE(caught);
}

Task<void> deep(Simulation& sim, int depth, int& leaf_hits) {
  if (depth == 0) {
    co_await sim.yield();
    ++leaf_hits;
    co_return;
  }
  co_await deep(sim, depth - 1, leaf_hits);
}

TEST(Task, DeepRecursionDoesNotOverflowStack) {
  Simulation sim;
  int hits = 0;
  sim.spawn(deep(sim, 50000, hits));
  sim.run();
  EXPECT_EQ(hits, 1);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<Time> times;
  sim.spawn(record_after(sim, ms(10), times));
  sim.spawn(record_after(sim, ms(100), times));
  EXPECT_FALSE(sim.run_until(ms(50)));
  EXPECT_EQ(times.size(), 1u);
  EXPECT_EQ(sim.now(), ms(50));
  EXPECT_TRUE(sim.run_until(ms(1000)));
  EXPECT_EQ(times.size(), 2u);
}

Task<void> sequential_delays(Simulation& sim, std::vector<Time>& out) {
  co_await sim.delay(ms(1));
  out.push_back(sim.now());
  co_await sim.delay(ms(2));
  out.push_back(sim.now());
  co_await sim.delay(ms(3));
  out.push_back(sim.now());
}

TEST(Simulation, SequentialDelaysAccumulate) {
  Simulation sim;
  std::vector<Time> times;
  sim.spawn(sequential_delays(sim, times));
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{ms(1), ms(3), ms(6)}));
}

TEST(Task, DroppedTaskNeverRunsAndDoesNotLeak) {
  Simulation sim;
  bool ran = false;
  {
    auto t = [](bool& r) -> Task<void> {
      r = true;
      co_return;
    }(ran);
    EXPECT_TRUE(t.valid());
    // destroyed unawaited
  }
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(us(1), 1000);
  EXPECT_EQ(ms(1), 1000000);
  EXPECT_EQ(sec(1), 1000000000);
  EXPECT_EQ(from_seconds(1.5), sec(1) + ms(500));
  EXPECT_DOUBLE_EQ(to_seconds(ms(1500)), 1.5);
}

TEST(TimeHelpers, DurationForBytes) {
  EXPECT_EQ(duration_for_bytes(0, 1e6), 0);
  EXPECT_EQ(duration_for_bytes(1'000'000, 1e6), sec(1));
  EXPECT_GE(duration_for_bytes(1, 1e12), 1);  // nonzero payload takes time
}

}  // namespace
}  // namespace dpnfs::sim
