// Mixed-workload stress: many clients doing different things to the same
// deployment at once — creation, deletion, truncation (layout recalls!),
// bulk streams, and small random I/O.  Everything must complete and the
// final state must be consistent.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace dpnfs::core {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

Task<void> bulk_writer(Deployment& d, size_t idx) {
  auto f = co_await d.client(idx).open("/bulk" + std::to_string(idx), true);
  for (int k = 0; k < 12; ++k) {
    co_await f->write(static_cast<uint64_t>(k) * 4_MiB,
                      Payload::virtual_bytes(4_MiB));
  }
  co_await f->close();
}

Task<void> churner(Deployment& d, size_t idx) {
  util::Rng rng(1000 + idx);
  auto& fs = d.client(idx);
  co_await fs.mkdir("/churn" + std::to_string(idx));
  std::vector<std::string> live;
  for (int op = 0; op < 40; ++op) {
    if (live.size() < 3 || rng.chance(0.6)) {
      const std::string path = "/churn" + std::to_string(idx) + "/f" +
                               std::to_string(op);
      auto f = co_await fs.open(path, true);
      co_await f->write(0, Payload::virtual_bytes(rng.range(1024, 256 * 1024)));
      co_await f->close();
      live.push_back(path);
    } else {
      const size_t victim = rng.below(live.size());
      co_await fs.remove(live[victim]);
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
  }
}

Task<void> shared_file_mixer(Deployment& d, size_t client_idx, size_t rank,
                             size_t ranks) {
  // All mixers share one file; one of them periodically truncates it,
  // recalling everyone's layouts mid-I/O.
  auto& fs = d.client(client_idx);
  if (rank == 0) {
    auto f = co_await fs.open("/shared", true);
    co_await f->write(0, Payload::virtual_bytes(16_MiB));
    co_await f->close();
  }
  // Cheap barrier substitute: wait until the file exists.
  while (true) {
    bool ok = true;
    uint64_t size = 0;
    try {
      size = co_await fs.stat_size("/shared");
    } catch (const std::exception&) {
      ok = false;
    }
    if (ok && size >= 16_MiB) break;
    co_await d.simulation().delay(sim::ms(5));
  }
  util::Rng rng(2000 + rank);
  auto f = co_await fs.open("/shared", false);
  for (int op = 0; op < 30; ++op) {
    const uint64_t off = rng.below(12_MiB);
    if (rng.chance(0.5)) {
      (void)co_await f->read(off, 64_KiB);
    } else {
      co_await f->write(off, Payload::virtual_bytes(64_KiB));
      co_await f->fsync();
    }
    if (rank == ranks - 1 && op % 10 == 5) {
      // The last mixer truncates (upward), forcing layout recalls.
      auto& native =
          static_cast<NfsFileSystemClient&>(fs).native();
      co_await native.truncate("/shared", 16_MiB + op * 1_MiB);
    }
  }
  co_await f->close();
}

TEST(Stress, MixedWorkloadsComplete) {
  ClusterConfig cfg;
  cfg.architecture = Architecture::kDirectPnfs;
  cfg.storage_nodes = 6;
  cfg.clients = 8;
  Deployment d(cfg);

  bool done = false;
  d.simulation().spawn([](Deployment& d, bool& done) -> Task<void> {
    co_await d.mount_all();
    sim::WaitGroup wg(d.simulation());
    // Clients 0-2: bulk streams; 3-4: namespace churn; 5-7: shared-file mix.
    for (size_t i = 0; i < 3; ++i) wg.spawn(bulk_writer(d, i));
    for (size_t i = 3; i < 5; ++i) wg.spawn(churner(d, i));
    for (size_t i = 5; i < 8; ++i) wg.spawn(shared_file_mixer(d, i, i - 5, 3));
    co_await wg.wait();
    done = true;
  }(d, done));
  d.simulation().run();
  ASSERT_TRUE(done) << "stress scenario deadlocked";

  // Consistency: bulk files fully sized, churn dirs openable, data on disk.
  bool checked = false;
  d.simulation().spawn([](Deployment& d, bool& checked) -> Task<void> {
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(co_await d.client(0).stat_size("/bulk" + std::to_string(i)),
                48_MiB);
    }
    for (size_t i = 3; i < 5; ++i) {
      auto names = co_await d.client(0).list("/churn" + std::to_string(i));
      for (const auto& n : names) {
        EXPECT_GT(co_await d.client(0).stat_size("/churn" + std::to_string(i) +
                                                 "/" + n),
                  0u);
      }
    }
    checked = true;
  }(d, checked));
  d.simulation().run();
  EXPECT_TRUE(checked);
  EXPECT_GT(d.disk_write_bytes(), 3 * 48_MiB);
}

TEST(Stress, RunsIdenticallyTwice) {
  auto fingerprint = [] {
    ClusterConfig cfg;
    cfg.architecture = Architecture::kDirectPnfs;
    cfg.storage_nodes = 4;
    cfg.clients = 4;
    Deployment d(cfg);
    bool done = false;
    d.simulation().spawn([](Deployment& d, bool& done) -> Task<void> {
      co_await d.mount_all();
      sim::WaitGroup wg(d.simulation());
      for (size_t i = 0; i < 2; ++i) wg.spawn(bulk_writer(d, i));
      for (size_t i = 2; i < 4; ++i) wg.spawn(churner(d, i));
      co_await wg.wait();
      done = true;
    }(d, done));
    d.simulation().run();
    EXPECT_TRUE(done);
    return std::make_pair(d.simulation().now(),
                          d.simulation().events_processed());
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

}  // namespace
}  // namespace dpnfs::core
