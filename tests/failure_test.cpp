// Failure-injection tests: servers that error, vanished files, dead
// sessions, and the error paths through the full client stack.
#include <gtest/gtest.h>

#include <memory>

#include "core/deployment.hpp"
#include "lfs/object_store.hpp"
#include "nfs/client.hpp"
#include "nfs/local_backend.hpp"
#include "nfs/server.hpp"
#include "sim/network.hpp"
#include "util/bytes.hpp"
#include "workload/ior.hpp"
#include "workload/runner.hpp"

namespace dpnfs {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

/// Backend decorator that fails a configurable set of operations.
class FaultyBackend final : public nfs::Backend {
 public:
  explicit FaultyBackend(nfs::Backend& inner) : inner_(inner) {}

  bool fail_reads = false;
  bool fail_writes = false;
  bool fail_commits = false;

  nfs::FileHandle root_fh() const override { return inner_.root_fh(); }
  Task<nfs::Status> getattr(nfs::FileHandle fh, nfs::Fattr* out) override {
    return inner_.getattr(fh, out);
  }
  Task<nfs::Status> set_size(nfs::FileHandle fh, uint64_t size) override {
    return inner_.set_size(fh, size);
  }
  Task<nfs::Status> lookup(nfs::FileHandle dir, const std::string& name,
                           nfs::FileHandle* out) override {
    return inner_.lookup(dir, name, out);
  }
  Task<nfs::Status> mkdir(nfs::FileHandle dir, const std::string& name,
                          nfs::FileHandle* out) override {
    return inner_.mkdir(dir, name, out);
  }
  Task<nfs::Status> open(nfs::FileHandle dir, const std::string& name,
                         bool create, nfs::FileHandle* out,
                         nfs::Fattr* attr) override {
    return inner_.open(dir, name, create, out, attr);
  }
  Task<nfs::Status> remove(nfs::FileHandle dir, const std::string& name) override {
    return inner_.remove(dir, name);
  }
  Task<nfs::Status> rename(nfs::FileHandle sd, const std::string& o,
                           nfs::FileHandle dd, const std::string& n) override {
    return inner_.rename(sd, o, dd, n);
  }
  Task<nfs::Status> readdir(nfs::FileHandle dir,
                            std::vector<nfs::DirEntry>* out) override {
    return inner_.readdir(dir, out);
  }
  Task<nfs::Status> read(nfs::FileHandle fh, uint64_t offset, uint32_t count,
                         Payload* out, bool* eof,
                         obs::TraceContext trace = {}) override {
    if (fail_reads) co_return nfs::Status::kIo;
    co_return co_await inner_.read(fh, offset, count, out, eof, trace);
  }
  Task<nfs::Status> write(nfs::FileHandle fh, uint64_t offset,
                          const Payload& data, nfs::StableHow stable,
                          nfs::StableHow* committed, uint64_t* post_change,
                          obs::TraceContext trace = {}) override {
    if (fail_writes) co_return nfs::Status::kNoSpc;
    co_return co_await inner_.write(fh, offset, data, stable, committed,
                                    post_change, trace);
  }
  Task<nfs::Status> commit(nfs::FileHandle fh,
                           obs::TraceContext trace = {}) override {
    if (fail_commits) co_return nfs::Status::kIo;
    co_return co_await inner_.commit(fh, trace);
  }

 private:
  nfs::Backend& inner_;
};

struct Rig {
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  sim::Node& server_node = net.add_node(sim::NodeParams{
      .name = "server",
      .nic = sim::NicParams{},
      .disk = sim::DiskParams{},
      .cpu = sim::CpuParams{}});
  sim::Node& client_node = net.add_node(sim::NodeParams{
      .name = "client",
      .nic = sim::NicParams{},
      .disk = std::nullopt,
      .cpu = sim::CpuParams{}});
  lfs::ObjectStore store{server_node};
  nfs::LocalBackend inner{store};
  FaultyBackend backend{inner};
  nfs::NfsServer server{fabric, server_node, rpc::kNfsPort, backend};
  std::unique_ptr<nfs::NfsClient> client;

  Rig() {
    server.start();
    client = std::make_unique<nfs::NfsClient>(
        fabric, client_node, server.address(), "t@SIM",
        nfs::ClientConfig{.pnfs_enabled = false});
  }
  void run(Task<void> t) {
    sim.spawn(std::move(t));
    sim.run();
  }
};

TEST(FailureInjection, ReadErrorSurfacesAsNfsError) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 0, Payload::virtual_bytes(8_MiB));
    co_await r.client->fsync(f);
    r.client->drop_caches();
    r.backend.fail_reads = true;
    bool threw = false;
    try {
      (void)co_await r.client->read(f, 0, 1_MiB);
    } catch (const nfs::NfsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    // Recovery: clearing the fault makes reads work again.
    r.backend.fail_reads = false;
    Payload p = co_await r.client->read(f, 0, 1_MiB);
    EXPECT_EQ(p.size(), 1_MiB);
    co_await r.client->close(f);
  }(r));
}

TEST(FailureInjection, WriteErrorSurfacesOnFlush) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    r.backend.fail_writes = true;
    // The cached write itself succeeds; the error appears at fsync.
    co_await r.client->write(f, 0, Payload::virtual_bytes(64_KiB));
    bool threw = false;
    try {
      co_await r.client->fsync(f);
    } catch (const nfs::NfsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(r));
}

TEST(FailureInjection, CommitErrorSurfacesOnFsync) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 0, Payload::virtual_bytes(64_KiB));
    r.backend.fail_commits = true;
    bool threw = false;
    try {
      co_await r.client->fsync(f);
    } catch (const nfs::NfsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(r));
}

TEST(FailureInjection, WorkloadRunnerPropagatesClientFailure) {
  // A workload that always throws must fail run_workload, not hang or abort.
  class Exploding final : public workload::Workload {
   public:
    std::string name() const override { return "exploding"; }
    Task<void> client_main(core::Deployment&, size_t) override {
      throw std::runtime_error("kaboom");
      co_return;
    }
  };
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  core::Deployment d(cfg);
  Exploding w;
  EXPECT_THROW((void)workload::run_workload(d, w), std::runtime_error);
}

TEST(FailureInjection, RemovedFileYieldsNoEntOnNextOpen) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  core::Deployment d(cfg);
  bool noent = false;
  d.simulation().spawn([](core::Deployment& d, bool& noent) -> Task<void> {
    co_await d.mount_all();
    auto f = co_await d.client(0).open("/victim", true);
    co_await f->write(0, Payload::virtual_bytes(1_MiB));
    co_await f->close();
    co_await d.client(1).remove("/victim");
    try {
      (void)co_await d.client(0).open("/victim", false);
    } catch (const std::exception&) {
      noent = true;
    }
  }(d, noent));
  d.simulation().run();
  EXPECT_TRUE(noent);
}

TEST(FailureInjection, StoppedServerDrainsWithoutServingNewCalls) {
  // After stop(), queued work is drained but the RPC channel is closed;
  // this must not crash or leak coroutines that the sanitizer of choice
  // would flag.
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 0, Payload::virtual_bytes(1_MiB));
    co_await r.client->close(f);
  }(r));
  r.server.stop();
  r.sim.run();  // drain
}

}  // namespace
}  // namespace dpnfs
