// Failure-injection tests: servers that error, vanished files, dead
// sessions, and the error paths through the full client stack.
#include <gtest/gtest.h>

#include <memory>

#include "core/deployment.hpp"
#include "lfs/object_store.hpp"
#include "nfs/client.hpp"
#include "nfs/local_backend.hpp"
#include "nfs/server.hpp"
#include "sim/network.hpp"
#include "support/faulty_backend.hpp"
#include "util/bytes.hpp"
#include "workload/ior.hpp"
#include "workload/runner.hpp"

namespace dpnfs {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;
using testsupport::FaultyBackend;

struct Rig {
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  sim::Node& server_node = net.add_node(sim::NodeParams{
      .name = "server",
      .nic = sim::NicParams{},
      .disk = sim::DiskParams{},
      .cpu = sim::CpuParams{}});
  sim::Node& client_node = net.add_node(sim::NodeParams{
      .name = "client",
      .nic = sim::NicParams{},
      .disk = std::nullopt,
      .cpu = sim::CpuParams{}});
  lfs::ObjectStore store{server_node};
  nfs::LocalBackend inner{store};
  FaultyBackend backend{inner};
  nfs::NfsServer server{fabric, server_node, rpc::kNfsPort, backend};
  std::unique_ptr<nfs::NfsClient> client;

  Rig() {
    server.start();
    client = std::make_unique<nfs::NfsClient>(
        fabric, client_node, server.address(), "t@SIM",
        nfs::ClientConfig{.pnfs_enabled = false});
  }
  void run(Task<void> t) {
    sim.spawn(std::move(t));
    sim.run();
  }
};

TEST(FailureInjection, ReadErrorSurfacesAsNfsError) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 0, Payload::virtual_bytes(8_MiB));
    co_await r.client->fsync(f);
    r.client->drop_caches();
    r.backend.fail(FaultyBackend::Op::kRead, nfs::Status::kIo);
    bool threw = false;
    try {
      (void)co_await r.client->read(f, 0, 1_MiB);
    } catch (const nfs::NfsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    EXPECT_GT(r.backend.injected(), 0u);
    // Recovery: clearing the fault makes reads work again.
    r.backend.clear(FaultyBackend::Op::kRead);
    Payload p = co_await r.client->read(f, 0, 1_MiB);
    EXPECT_EQ(p.size(), 1_MiB);
    co_await r.client->close(f);
  }(r));
}

TEST(FailureInjection, WriteErrorSurfacesOnFlush) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    r.backend.fail(FaultyBackend::Op::kWrite, nfs::Status::kNoSpc);
    // The cached write itself succeeds; the error appears at fsync.
    co_await r.client->write(f, 0, Payload::virtual_bytes(64_KiB));
    bool threw = false;
    try {
      co_await r.client->fsync(f);
    } catch (const nfs::NfsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(r));
}

TEST(FailureInjection, CommitErrorSurfacesOnFsync) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 0, Payload::virtual_bytes(64_KiB));
    r.backend.fail(FaultyBackend::Op::kCommit, nfs::Status::kIo);
    bool threw = false;
    try {
      co_await r.client->fsync(f);
    } catch (const nfs::NfsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(r));
}

TEST(FailureInjection, WorkloadRunnerPropagatesClientFailure) {
  // A workload that always throws must fail run_workload, not hang or abort.
  class Exploding final : public workload::Workload {
   public:
    std::string name() const override { return "exploding"; }
    Task<void> client_main(core::Deployment&, size_t) override {
      throw std::runtime_error("kaboom");
      co_return;
    }
  };
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  core::Deployment d(cfg);
  Exploding w;
  EXPECT_THROW((void)workload::run_workload(d, w), std::runtime_error);
}

TEST(FailureInjection, RemovedFileYieldsNoEntOnNextOpen) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  core::Deployment d(cfg);
  bool noent = false;
  d.simulation().spawn([](core::Deployment& d, bool& noent) -> Task<void> {
    co_await d.mount_all();
    auto f = co_await d.client(0).open("/victim", true);
    co_await f->write(0, Payload::virtual_bytes(1_MiB));
    co_await f->close();
    co_await d.client(1).remove("/victim");
    try {
      (void)co_await d.client(0).open("/victim", false);
    } catch (const std::exception&) {
      noent = true;
    }
  }(d, noent));
  d.simulation().run();
  EXPECT_TRUE(noent);
}

TEST(FailureInjection, StoppedServerDrainsWithoutServingNewCalls) {
  // After stop(), queued work is drained but the RPC channel is closed;
  // this must not crash or leak coroutines that the sanitizer of choice
  // would flag.
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 0, Payload::virtual_bytes(1_MiB));
    co_await r.client->close(f);
  }(r));
  r.server.stop();
  r.sim.run();  // drain
}

}  // namespace
}  // namespace dpnfs
