// Redundancy: Reed-Solomon coding contracts, and degraded-mode reads and
// writes under a permanent data-server kill (`ctest -L faults`).
//
// The deployment half of the matrix kills one (or two) data-server nodes —
// both the NFS data server and the PVFS storage daemon, never revived — and
// asserts the client contract from docs/failures.md:
//   - every byte reads back byte-identical through a surviving replica
//     (mirror) or k-of-n reconstruction (erasure);
//   - writes issued during the outage are absorbed by the surviving
//     redundancy, not errored and not proxied;
//   - `client.recovery.mds_fallbacks` stays pinned at zero throughout.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/adapters.hpp"
#include "core/deployment.hpp"
#include "rpc/fabric.hpp"
#include "util/bytes.hpp"
#include "util/reed_solomon.hpp"

namespace dpnfs {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;
using util::ReedSolomon;

// ---------------------------------------------------------------------------
// Reed-Solomon unit contracts
// ---------------------------------------------------------------------------

uint64_t next_rand(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::vector<std::vector<std::byte>> random_shards(uint32_t k, size_t len,
                                                  uint64_t seed) {
  std::vector<std::vector<std::byte>> out(k);
  for (auto& shard : out) {
    shard.resize(len);
    for (auto& b : shard) b = static_cast<std::byte>(next_rand(seed) & 0xFF);
  }
  return out;
}

TEST(ReedSolomon, RoundTripsEveryErasurePattern) {
  constexpr uint32_t k = 4, m = 2;
  const ReedSolomon rs(k, m);
  const auto data = random_shards(k, 257, 42);
  std::vector<std::vector<std::byte>> parity;
  rs.encode(data, &parity);
  ASSERT_EQ(parity.size(), m);

  // Every erasure pattern of <= m shards (including parity) reconstructs.
  const uint32_t n = k + m;
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = a; b < n; ++b) {  // a == b: single erasure
      std::vector<std::optional<std::vector<std::byte>>> shards(n);
      for (uint32_t i = 0; i < k; ++i) shards[i] = data[i];
      for (uint32_t j = 0; j < m; ++j) shards[k + j] = parity[j];
      shards[a].reset();
      shards[b].reset();
      ASSERT_TRUE(rs.reconstruct(&shards)) << a << "," << b;
      for (uint32_t i = 0; i < k; ++i) {
        ASSERT_EQ(*shards[i], data[i]) << "data " << i << " after erasing "
                                       << a << "," << b;
      }
      for (uint32_t j = 0; j < m; ++j) {
        ASSERT_EQ(*shards[k + j], parity[j])
            << "parity " << j << " after erasing " << a << "," << b;
      }
    }
  }
}

TEST(ReedSolomon, RefusesMoreThanMErasures) {
  const ReedSolomon rs(4, 2);
  const auto data = random_shards(4, 64, 7);
  std::vector<std::vector<std::byte>> parity;
  rs.encode(data, &parity);
  std::vector<std::optional<std::vector<std::byte>>> shards(6);
  for (uint32_t i = 0; i < 4; ++i) shards[i] = data[i];
  for (uint32_t j = 0; j < 2; ++j) shards[4 + j] = parity[j];
  shards[0].reset();
  shards[2].reset();
  shards[5].reset();
  EXPECT_FALSE(rs.reconstruct(&shards));
}

TEST(ReedSolomon, EncodeIsDeterministic) {
  const ReedSolomon rs(3, 2);
  const auto data = random_shards(3, 100, 99);
  std::vector<std::vector<std::byte>> p1, p2;
  rs.encode(data, &p1);
  rs.encode(data, &p2);
  EXPECT_EQ(p1, p2);
}

TEST(ReedSolomon, SingleParityRoundTrips) {
  const ReedSolomon rs(3, 1);
  const auto data = random_shards(3, 33, 5);
  std::vector<std::vector<std::byte>> parity;
  rs.encode(data, &parity);
  for (uint32_t gone = 0; gone < 4; ++gone) {
    std::vector<std::optional<std::vector<std::byte>>> shards(4);
    for (uint32_t i = 0; i < 3; ++i) shards[i] = data[i];
    shards[3] = parity[0];
    shards[gone].reset();
    ASSERT_TRUE(rs.reconstruct(&shards));
    for (uint32_t i = 0; i < 3; ++i) ASSERT_EQ(*shards[i], data[i]);
  }
}

// ---------------------------------------------------------------------------
// Degraded reads and writes under permanent DS loss
// ---------------------------------------------------------------------------

Payload oracle(uint64_t base, uint64_t length) {
  std::vector<std::byte> v(length);
  for (uint64_t i = 0; i < length; ++i) {
    const uint64_t o = base + i;
    v[i] = static_cast<std::byte>((o * 167 + (o >> 13) * 11 + 5) & 0xFF);
  }
  return Payload::inline_bytes(std::move(v));
}

constexpr sim::Time kKillAt = sim::ms(500);
constexpr uint64_t kInitial = 1_MiB;    // durable (fsynced) before the kill
constexpr uint64_t kUnstable = 256_KiB;  // streamed but UNCOMMITTED at kill
constexpr uint64_t kExtra = 256_KiB;     // written during the outage
constexpr uint64_t kTotal = kInitial + kUnstable + kExtra;

struct DegradedCase {
  std::vector<uint32_t> victims;  ///< storage nodes killed (never node 0)
  bool rotate = false;            ///< advance placement by one create first
  bool expect_degraded_reads = false;
  bool expect_reconstruct = false;
  /// Mirror only: the pre-kill unstable chunk leaves a COMMIT target on the
  /// dead replica, so the post-kill fsync must take the degraded-commit
  /// rung.  (EC flushes only at fsync, so its targets never straddle the
  /// kill.)
  bool expect_degraded_commit = false;
};

struct DegradedOutcome {
  bool data_ok = false;
  nfs::ClientStats writer;
  nfs::ClientStats reader;
};

const nfs::ClientStats& client_stats(core::Deployment& d, size_t i) {
  return dynamic_cast<core::NfsFileSystemClient&>(d.client(i)).native().stats();
}

Task<void> degraded_scenario(core::Deployment& d, bool rotate,
                             bool& data_ok) {
  auto& sim = d.simulation();
  co_await d.mount_all();
  co_await d.client(0).mkdir("/r");
  if (rotate) {
    // Advance the round-robin placement by one create so the file under
    // test lands on the next node set.
    auto r = co_await d.client(0).open("/r/rotate", true);
    co_await r->close();
  }

  // Writer: the bulk of the file is written and durable before the kill.
  auto f = co_await d.client(0).open("/r/f", true);
  co_await f->write(0, oracle(0, kInitial));
  co_await f->fsync();
  // One more chunk streams out (wsize-sized, so the write-back pushes it
  // immediately) but is deliberately NOT committed before the kill.
  co_await f->write(kInitial, oracle(kInitial, kUnstable));
  co_await sim.delay(sim::ms(50));  // let the async WRITEs land

  co_await sim.delay(kKillAt + sim::ms(100) - sim.now());

  // Outage is live: the write is absorbed by the surviving redundancy, and
  // the fsync — which must also commit the pre-kill unstable chunk —
  // converges without error.  Neither touches the MDS data path.
  co_await f->write(kInitial + kUnstable, oracle(kInitial + kUnstable,
                                                 kExtra));
  co_await f->fsync();

  // Cold reader (fresh cache, stale placement): every byte must come back
  // through the degraded machinery, byte-identical.
  auto g = co_await d.client(1).open_read("/r/f");
  Payload back = co_await g->read(0, kTotal);
  data_ok = back == oracle(0, kTotal);
  // Second read: the breaker is open now, so routing remaps up front.
  Payload again = co_await g->read(0, kTotal);
  data_ok = data_ok && again == oracle(0, kTotal);
  try {
    co_await g->close();
    co_await f->close();
  } catch (const std::exception&) {
    // Close-time size gathering may brush the dead daemon; data is durable.
  }
}

DegradedOutcome run_degraded(core::ClusterConfig cfg,
                             const DegradedCase& c) {
  cfg.clients = 2;
  cfg.stripe_unit = 256_KiB;
  // Fast-failure posture so the retry burn stays small; wsize matches the
  // chunk size so non-EC writes stream out the moment they are written.
  cfg.nfs_client.ds_timeout = sim::ms(200);
  cfg.nfs_client.ds_rpc_retries = 2;
  cfg.nfs_client.slice_retries = 1;
  cfg.nfs_client.breaker_threshold = 2;
  cfg.nfs_client.breaker_reset = sim::ms(400);
  cfg.nfs_client.wsize = 256_KiB;
  cfg.pvfs_client.io_timeout = sim::ms(200);
  cfg.pvfs_client.io_retries = 2;
  for (uint32_t v : c.victims) {
    cfg.faults.crash_service(v, rpc::kNfsPort, kKillAt);
    cfg.faults.crash_service(v, rpc::kPvfsIoPort, kKillAt);
  }

  core::Deployment d(cfg);
  bool data_ok = false;
  d.simulation().spawn(degraded_scenario(d, c.rotate, data_ok));
  d.simulation().run();

  DegradedOutcome out;
  out.data_ok = data_ok;
  out.writer = client_stats(d, 0);
  out.reader = client_stats(d, 1);
  return out;
}

void expect_degraded_sound(const DegradedOutcome& out, const DegradedCase& c) {
  EXPECT_TRUE(out.data_ok);
  // The MDS fallback counter is pinned at zero: redundancy, not the MDS,
  // carried every degraded byte.
  EXPECT_EQ(out.writer.mds_fallbacks, 0u);
  EXPECT_EQ(out.reader.mds_fallbacks, 0u);
  // The outage-time write really went through the degraded write path.
  EXPECT_GE(out.writer.degraded_writes, 1u);
  if (c.expect_degraded_commit) {
    EXPECT_GE(out.writer.degraded_commits, 1u);
  }
  if (c.expect_degraded_reads) {
    EXPECT_GE(out.reader.degraded_reads + out.reader.replica_reroutes, 1u);
  }
  if (c.expect_reconstruct) {
    EXPECT_GE(out.reader.ec_reconstructions, 1u);
  }
}

core::ClusterConfig mirror_config() {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 3;
  cfg.distribution = pvfs::DistKind::kMirror;
  cfg.replicas = 2;
  return cfg;
}

core::ClusterConfig erasure_config() {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.distribution = pvfs::DistKind::kErasure;
  cfg.ec_k = 2;
  cfg.ec_m = 2;
  return cfg;
}

// First created file under 3 active nodes with 2 replicas lands on nodes
// {0, 1}; killing node 1 removes one replica of it.
TEST(DegradedMirror, SurvivesReplicaKill) {
  const DegradedCase c{.victims = {1},
                       .expect_degraded_reads = true,
                       .expect_degraded_commit = true};
  expect_degraded_sound(run_degraded(mirror_config(), c), c);
}

// Rotate the placement (one extra create) so the file lives on {1, 2}, then
// kill each of its replicas in turn.
TEST(DegradedMirror, SurvivesEachReplicaKillInTurn) {
  for (uint32_t victim : {1u, 2u}) {
    const DegradedCase c{.victims = {victim},
                         .rotate = true,
                         .expect_degraded_reads = true,
                         .expect_degraded_commit = true};
    expect_degraded_sound(run_degraded(mirror_config(), c), c);
  }
}

// EC(2+2), first file on nodes {0,1,2,3}: data on {0,1}, parity on {2,3}.
TEST(DegradedErasure, SurvivesDataFragmentKill) {
  const DegradedCase c{.victims = {1},
                       .expect_degraded_reads = true,
                       .expect_reconstruct = true};
  expect_degraded_sound(run_degraded(erasure_config(), c), c);
}

TEST(DegradedErasure, SurvivesParityFragmentKill) {
  // Reads never touch parity devices; writes during the outage must still
  // absorb the unreachable parity segment.
  const DegradedCase c{.victims = {2}};
  expect_degraded_sound(run_degraded(erasure_config(), c), c);
}

TEST(DegradedErasure, SurvivesBothParityKills) {
  const DegradedCase c{.victims = {2, 3}};
  expect_degraded_sound(run_degraded(erasure_config(), c), c);
}

TEST(DegradedErasure, SurvivesDataPlusParityKill) {
  // m = 2 erasures: one data fragment and one parity fragment at once;
  // reconstruction must pick exactly the two live shards.
  const DegradedCase c{.victims = {1, 3},
                       .expect_degraded_reads = true,
                       .expect_reconstruct = true};
  expect_degraded_sound(run_degraded(erasure_config(), c), c);
}

}  // namespace
}  // namespace dpnfs
