// NFS protocol-level tests: COMPOUND evaluation rules, sessions, stateids,
// layout/device XDR round trips, and raw-wire interactions that bypass the
// friendly client API.
#include <gtest/gtest.h>

#include <memory>

#include "lfs/object_store.hpp"
#include "nfs/compound_reply.hpp"
#include "nfs/local_backend.hpp"
#include "nfs/server.hpp"
#include "rpc/fabric.hpp"
#include "sim/network.hpp"

namespace dpnfs::nfs {
namespace {

using rpc::Payload;
using sim::Task;

struct Wire {
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  sim::Node& server_node = net.add_node(sim::NodeParams{
      .name = "server",
      .nic = sim::NicParams{},
      .disk = sim::DiskParams{},
      .cpu = sim::CpuParams{}});
  sim::Node& client_node = net.add_node(sim::NodeParams{
      .name = "client",
      .nic = sim::NicParams{},
      .disk = std::nullopt,
      .cpu = sim::CpuParams{}});
  lfs::ObjectStore store{server_node};
  LocalBackend backend{store};
  NfsServer server{fabric, server_node, rpc::kNfsPort, backend};
  rpc::RpcClient rpc{fabric, client_node, "raw@SIM"};

  Wire() { server.start(); }

  /// Sends a raw COMPOUND and returns the parsed reply.
  Task<std::unique_ptr<CompoundReply>> compound(CompoundBuilder b) {
    auto raw = co_await rpc.call(server.address(), rpc::Program::kNfs, 4, 1,
                                 std::move(b).finish());
    co_return std::make_unique<CompoundReply>(std::move(raw));
  }

  void run(Task<void> t) {
    sim.spawn(std::move(t));
    sim.run();
  }
};

TEST(Compound, StopsAtFirstFailure) {
  Wire w;
  w.run([](Wire& w) -> Task<void> {
    CompoundBuilder b;
    b.add(OpCode::kPutRootFh);
    b.add(OpCode::kLookup, LookupArgs{"missing"});  // fails: NOENT
    b.add(OpCode::kGetFh);                          // must not execute
    auto r = co_await w.compound(std::move(b));
    EXPECT_EQ(r->result_count(), 2u);  // PUTROOTFH + failed LOOKUP only
    EXPECT_EQ(r->try_next(OpCode::kPutRootFh), Status::kOk);
    EXPECT_EQ(r->try_next(OpCode::kLookup), Status::kNoEnt);
    EXPECT_FALSE(r->has_more());
  }(w));
}

TEST(Compound, SequenceWithUnknownSessionFails) {
  Wire w;
  w.run([](Wire& w) -> Task<void> {
    CompoundBuilder b;
    b.add(OpCode::kSequence, SequenceArgs{SessionId{424242}, 0});
    b.add(OpCode::kPutRootFh);
    auto r = co_await w.compound(std::move(b));
    EXPECT_EQ(r->try_next(OpCode::kSequence), Status::kBadSession);
    EXPECT_FALSE(r->has_more());
  }(w));
}

TEST(Compound, OpsOnStaleFilehandle) {
  Wire w;
  w.run([](Wire& w) -> Task<void> {
    CompoundBuilder b;
    b.add(OpCode::kPutFh, PutFhArgs{FileHandle{987654}});
    b.add(OpCode::kGetattr);
    auto r = co_await w.compound(std::move(b));
    EXPECT_EQ(r->try_next(OpCode::kPutFh), Status::kOk);  // PUTFH is lazy
    EXPECT_EQ(r->try_next(OpCode::kGetattr), Status::kStale);
  }(w));
}

TEST(Compound, ReadWithBogusStateidRejected) {
  Wire w;
  w.run([](Wire& w) -> Task<void> {
    // Create a file first.
    CompoundBuilder c;
    c.add(OpCode::kPutRootFh);
    c.add(OpCode::kOpen, OpenArgs{"f", true});
    c.add(OpCode::kGetFh);
    auto r1 = co_await w.compound(std::move(c));
    r1->expect(OpCode::kPutRootFh);
    (void)r1->expect<OpenRes>(OpCode::kOpen);
    const FileHandle fh = r1->expect<GetFhRes>(OpCode::kGetFh).fh;

    CompoundBuilder b;
    b.add(OpCode::kPutFh, PutFhArgs{fh});
    b.add(OpCode::kRead, ReadArgs{Stateid{555555}, 0, 100});
    auto r2 = co_await w.compound(std::move(b));
    EXPECT_EQ(r2->try_next(OpCode::kPutFh), Status::kOk);
    EXPECT_EQ(r2->try_next(OpCode::kRead), Status::kBadStateid);
  }(w));
}

TEST(Compound, AnonymousAndDsStateidsAccepted) {
  Wire w;
  w.run([](Wire& w) -> Task<void> {
    CompoundBuilder c;
    c.add(OpCode::kPutRootFh);
    c.add(OpCode::kOpen, OpenArgs{"f", true});
    c.add(OpCode::kGetFh);
    auto r1 = co_await w.compound(std::move(c));
    r1->expect(OpCode::kPutRootFh);
    (void)r1->expect<OpenRes>(OpCode::kOpen);
    const FileHandle fh = r1->expect<GetFhRes>(OpCode::kGetFh).fh;

    for (const Stateid sid : {kAnonymousStateid, kDataServerStateid}) {
      CompoundBuilder b;
      b.add(OpCode::kPutFh, PutFhArgs{fh});
      b.add(OpCode::kWrite,
            WriteArgs{sid, 0, StableHow::kFileSync, Payload::from_string("x")});
      auto r = co_await w.compound(std::move(b));
      EXPECT_EQ(r->try_next(OpCode::kPutFh), Status::kOk);
      EXPECT_EQ(r->try_next(OpCode::kWrite), Status::kOk);
    }
  }(w));
}

TEST(Compound, CloseInvalidatesStateid) {
  Wire w;
  w.run([](Wire& w) -> Task<void> {
    CompoundBuilder c;
    c.add(OpCode::kPutRootFh);
    c.add(OpCode::kOpen, OpenArgs{"f", true});
    c.add(OpCode::kGetFh);
    auto r1 = co_await w.compound(std::move(c));
    r1->expect(OpCode::kPutRootFh);
    const Stateid sid = r1->expect<OpenRes>(OpCode::kOpen).stateid;
    const FileHandle fh = r1->expect<GetFhRes>(OpCode::kGetFh).fh;

    CompoundBuilder b;
    b.add(OpCode::kPutFh, PutFhArgs{fh});
    b.add(OpCode::kClose, CloseArgs{sid});
    auto r2 = co_await w.compound(std::move(b));
    EXPECT_EQ(r2->try_next(OpCode::kPutFh), Status::kOk);
    EXPECT_EQ(r2->try_next(OpCode::kClose), Status::kOk);

    // Double close: the stateid is gone.
    CompoundBuilder b2;
    b2.add(OpCode::kPutFh, PutFhArgs{fh});
    b2.add(OpCode::kClose, CloseArgs{sid});
    auto r3 = co_await w.compound(std::move(b2));
    EXPECT_EQ(r3->try_next(OpCode::kPutFh), Status::kOk);
    EXPECT_EQ(r3->try_next(OpCode::kClose), Status::kBadStateid);

    // Using the closed stateid for WRITE also fails.
    CompoundBuilder b3;
    b3.add(OpCode::kPutFh, PutFhArgs{fh});
    b3.add(OpCode::kWrite,
           WriteArgs{sid, 0, StableHow::kUnstable, Payload::from_string("x")});
    auto r4 = co_await w.compound(std::move(b3));
    EXPECT_EQ(r4->try_next(OpCode::kPutFh), Status::kOk);
    EXPECT_EQ(r4->try_next(OpCode::kWrite), Status::kBadStateid);
  }(w));
}

TEST(Compound, SaveRestoreFhForRename) {
  Wire w;
  w.run([](Wire& w) -> Task<void> {
    // Build /src/f and /dst, then RENAME via SAVEFH.
    CompoundBuilder setup;
    setup.add(OpCode::kPutRootFh);
    setup.add(OpCode::kCreate, CreateArgs{"src"});
    setup.add(OpCode::kOpen, OpenArgs{"f", true});
    auto r0 = co_await w.compound(std::move(setup));
    r0->expect(OpCode::kPutRootFh);
    r0->expect(OpCode::kCreate);
    (void)r0->expect<OpenRes>(OpCode::kOpen);

    CompoundBuilder mk;
    mk.add(OpCode::kPutRootFh);
    mk.add(OpCode::kCreate, CreateArgs{"dst"});
    auto r1 = co_await w.compound(std::move(mk));
    r1->expect(OpCode::kPutRootFh);
    r1->expect(OpCode::kCreate);

    CompoundBuilder mv;
    mv.add(OpCode::kPutRootFh);
    mv.add(OpCode::kLookup, LookupArgs{"src"});
    mv.add(OpCode::kSaveFh);
    mv.add(OpCode::kPutRootFh);
    mv.add(OpCode::kLookup, LookupArgs{"dst"});
    mv.add(OpCode::kRename, RenameArgs{"f", "g"});
    auto r2 = co_await w.compound(std::move(mv));
    for (OpCode op : {OpCode::kPutRootFh, OpCode::kLookup, OpCode::kSaveFh,
                      OpCode::kPutRootFh, OpCode::kLookup}) {
      EXPECT_EQ(r2->try_next(op), Status::kOk);
    }
    EXPECT_EQ(r2->try_next(OpCode::kRename), Status::kOk);

    // Verify the move.
    CompoundBuilder check;
    check.add(OpCode::kPutRootFh);
    check.add(OpCode::kLookup, LookupArgs{"dst"});
    check.add(OpCode::kLookup, LookupArgs{"g"});
    auto r3 = co_await w.compound(std::move(check));
    EXPECT_EQ(r3->try_next(OpCode::kPutRootFh), Status::kOk);
    EXPECT_EQ(r3->try_next(OpCode::kLookup), Status::kOk);
    EXPECT_EQ(r3->try_next(OpCode::kLookup), Status::kOk);
  }(w));
}

TEST(Compound, TooManyOpsRejectedAtRpcLayer) {
  Wire w;
  w.run([](Wire& w) -> Task<void> {
    CompoundBuilder b;
    for (int i = 0; i < 100; ++i) b.add(OpCode::kPutRootFh);
    auto raw = co_await w.rpc.call(w.server.address(), rpc::Program::kNfs, 4, 1,
                                   std::move(b).finish());
    // The server throws XdrError("compound too long") -> GARBAGE_ARGS.
    EXPECT_EQ(raw.status, rpc::ReplyStatus::kGarbageArgs);
  }(w));
}

// ---------------------------------------------------------------------------
// XDR round trips for pNFS types
// ---------------------------------------------------------------------------

TEST(LayoutXdr, FileLayoutRoundTrip) {
  FileLayout l;
  l.aggregation = AggregationType::kVariableStripe;
  l.stripe_unit = 777;
  l.devices = {DeviceId{3}, DeviceId{1}, DeviceId{2}};
  l.fhs = {FileHandle{10}, FileHandle{20}, FileHandle{30}};
  l.params = {2, 64, 5, 1024, 1};
  rpc::XdrEncoder enc;
  l.encode(enc);
  auto buf = std::move(enc).take();
  rpc::XdrDecoder dec(buf);
  const FileLayout g = FileLayout::decode(dec);
  EXPECT_EQ(g.aggregation, l.aggregation);
  EXPECT_EQ(g.stripe_unit, l.stripe_unit);
  EXPECT_EQ(g.devices, l.devices);
  EXPECT_EQ(g.fhs.size(), 3u);
  EXPECT_EQ(g.fhs[2], FileHandle{30});
  EXPECT_EQ(g.params, l.params);
  EXPECT_TRUE(dec.done());
}

TEST(LayoutXdr, BadAggregationRejected) {
  rpc::XdrEncoder enc;
  enc.put_u32(99);  // invalid aggregation id
  enc.put_u64(4096);
  enc.put_u32(0);
  enc.put_u32(0);
  enc.put_u32(0);
  auto buf = std::move(enc).take();
  rpc::XdrDecoder dec(buf);
  EXPECT_THROW(FileLayout::decode(dec), rpc::XdrError);
}

TEST(LayoutXdr, DeviceEntryRoundTrip) {
  DeviceEntry e{DeviceId{9}, 1234, 2049};
  rpc::XdrEncoder enc;
  e.encode(enc);
  auto buf = std::move(enc).take();
  rpc::XdrDecoder dec(buf);
  const DeviceEntry g = DeviceEntry::decode(dec);
  EXPECT_EQ(g.device, DeviceId{9});
  EXPECT_EQ(g.node_id, 1234u);
  EXPECT_EQ(g.port, 2049);
}

TEST(LayoutXdr, FattrRejectsBadType) {
  rpc::XdrEncoder enc;
  enc.put_u32(7);  // not a file type
  enc.put_u64(0);
  enc.put_u64(0);
  enc.put_u64(0);
  enc.put_i64(0);
  auto buf = std::move(enc).take();
  rpc::XdrDecoder dec(buf);
  EXPECT_THROW(Fattr::decode(dec), rpc::XdrError);
}

}  // namespace
}  // namespace dpnfs::nfs
