#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/simulation.hpp"
#include "util/bytes.hpp"

namespace dpnfs::sim {
namespace {

using namespace dpnfs::util::literals;

NodeParams make_node(std::string name, double nic_bps = 100e6,
                     Duration latency = 0) {
  return NodeParams{.name = std::move(name),
                    .nic = NicParams{.bytes_per_sec = nic_bps, .latency = latency},
                    .disk = std::nullopt,
                    .cpu = CpuParams{.cores = 2}};
}

Task<void> do_transfer(Network& net, Node& a, Node& b, uint64_t bytes,
                       Time* done_at = nullptr) {
  co_await net.transfer(a, b, bytes);
  if (done_at != nullptr) *done_at = net.simulation().now();
}

TEST(Network, SingleFlowAchievesLineRate) {
  Simulation sim;
  Network net(sim);
  Node& a = net.add_node(make_node("a"));
  Node& b = net.add_node(make_node("b"));
  sim.spawn(do_transfer(net, a, b, 100'000'000));
  sim.run();
  // 1 second of wire time plus one pipelined chunk on the receive side.
  const double elapsed = to_seconds(sim.now());
  EXPECT_GT(elapsed, 1.0);
  EXPECT_LT(elapsed, 1.05);
}

TEST(Network, LatencyAppliesOnce) {
  Simulation sim;
  Network net(sim);
  Node& a = net.add_node(make_node("a", 100e6, ms(10)));
  Node& b = net.add_node(make_node("b", 100e6, ms(10)));
  sim.spawn(do_transfer(net, a, b, 1));
  sim.run();
  EXPECT_GE(sim.now(), ms(10));
  EXPECT_LT(sim.now(), ms(11));
}

TEST(Network, TwoFlowsShareSenderNic) {
  Simulation sim;
  Network net(sim);
  Node& a = net.add_node(make_node("a"));
  Node& b = net.add_node(make_node("b"));
  Node& c = net.add_node(make_node("c"));
  Time tb = 0, tc = 0;
  sim.spawn(do_transfer(net, a, b, 50'000'000, &tb));
  sim.spawn(do_transfer(net, a, c, 50'000'000, &tc));
  sim.run();
  // 100 MB total leaves a's 100 MB/s NIC in ~1s; both flows finish near the
  // end because they share fairly.
  EXPECT_NEAR(to_seconds(sim.now()), 1.0, 0.07);
  EXPECT_NEAR(to_seconds(tb), to_seconds(tc), 0.05);
}

TEST(Network, TwoFlowsShareReceiverNic) {
  Simulation sim;
  Network net(sim);
  Node& a = net.add_node(make_node("a"));
  Node& b = net.add_node(make_node("b"));
  Node& c = net.add_node(make_node("c"));
  sim.spawn(do_transfer(net, a, c, 50'000'000));
  sim.spawn(do_transfer(net, b, c, 50'000'000));
  sim.run();
  EXPECT_NEAR(to_seconds(sim.now()), 1.0, 0.07);
}

TEST(Network, DisjointFlowsDoNotInterfere) {
  Simulation sim;
  Network net(sim);
  Node& a = net.add_node(make_node("a"));
  Node& b = net.add_node(make_node("b"));
  Node& c = net.add_node(make_node("c"));
  Node& d = net.add_node(make_node("d"));
  Time t1 = 0, t2 = 0;
  sim.spawn(do_transfer(net, a, b, 100'000'000, &t1));
  sim.spawn(do_transfer(net, c, d, 100'000'000, &t2));
  sim.run();
  // A non-blocking switch: each flow gets full line rate.
  EXPECT_LT(to_seconds(sim.now()), 1.05);
}

TEST(Network, LoopbackBypassesNic) {
  Simulation sim;
  Network net(sim);
  Node& a = net.add_node(make_node("a", 1.0 /* crawling NIC */));
  sim.spawn(do_transfer(net, a, a, 100_MiB));
  sim.run();
  // Would take ~100M seconds over the NIC; loopback is memory-speed.
  EXPECT_LT(to_seconds(sim.now()), 1.0);
}

TEST(Network, ZeroByteMessageStillCostsLatency) {
  Simulation sim;
  Network net(sim);
  Node& a = net.add_node(make_node("a", 100e6, us(100)));
  Node& b = net.add_node(make_node("b", 100e6, us(100)));
  sim.spawn(do_transfer(net, a, b, 0));
  sim.run();
  EXPECT_GE(sim.now(), us(100));
}

TEST(Network, AsymmetricRatesBottleneckOnSlowerSide) {
  Simulation sim;
  NetworkParams np;
  Network net(sim, np);
  Node& fast = net.add_node(make_node("fast", 1000e6));
  Node& slow = net.add_node(make_node("slow", 100e6));
  sim.spawn(do_transfer(net, fast, slow, 100'000'000));
  sim.run();
  const double elapsed = to_seconds(sim.now());
  EXPECT_GT(elapsed, 0.99);  // receiver-limited
  EXPECT_LT(elapsed, 1.1);
}

TEST(Network, ManyToOneAggregatesAtReceiverRate) {
  Simulation sim;
  Network net(sim);
  Node& sink = net.add_node(make_node("sink"));
  WaitGroup wg(sim);
  for (int i = 0; i < 4; ++i) {
    Node& src = net.add_node(make_node("src" + std::to_string(i)));
    wg.spawn(do_transfer(net, src, sink, 25'000'000));
  }
  sim.run();
  // 100 MB into a 100 MB/s receiver.
  EXPECT_NEAR(to_seconds(sim.now()), 1.0, 0.08);
}

}  // namespace
}  // namespace dpnfs::sim
