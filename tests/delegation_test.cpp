// NFSv4 read-delegation tests on the Direct-pNFS deployment: grant on
// read-only open, RPC-free local re-opens, and recall on conflicts.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "util/bytes.hpp"

namespace dpnfs::core {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

ClusterConfig small() {
  ClusterConfig cfg;
  cfg.architecture = Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  return cfg;
}

nfs::NfsClient& native(Deployment& d, size_t i) {
  return static_cast<NfsFileSystemClient&>(d.client(i)).native();
}

Task<void> seed_file(Deployment& d, const std::string& path, uint64_t bytes) {
  auto f = co_await d.client(0).open(path, true);
  // Inline content so later byte-level probes stay verifiable.
  co_await f->write(0, Payload::inline_bytes(
                           std::vector<std::byte>(bytes, std::byte{0x5A})));
  co_await f->close();
}

TEST(Delegation, GrantedOnReadOnlyOpen) {
  Deployment d(small());
  d.simulation().spawn([](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    co_await seed_file(d, "/f", 1_MiB);
    auto& a = native(d, 0);
    auto fa = co_await a.open("/f", false, /*read_only=*/true);
    EXPECT_TRUE(a.file_has_delegation(fa));
    co_await a.close(fa);
  }(d));
  d.simulation().run();
}

TEST(Delegation, NotGrantedToWriters) {
  Deployment d(small());
  d.simulation().spawn([](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    co_await seed_file(d, "/f", 1_MiB);
    auto& a = native(d, 0);
    auto fa = co_await a.open("/f", false);  // read-write share
    EXPECT_FALSE(a.file_has_delegation(fa));
    co_await a.close(fa);
  }(d));
  d.simulation().run();
}

TEST(Delegation, ReopenUnderDelegationIsRpcFree) {
  Deployment d(small());
  d.simulation().spawn([](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    co_await seed_file(d, "/hot", 256_KiB);
    auto& a = native(d, 0);

    auto first = co_await a.open("/hot", false, true);
    (void)co_await a.read(first, 0, 256_KiB);  // populate cache
    co_await a.close(first);

    const uint64_t rpcs_before = a.stats().rpcs;
    for (int i = 0; i < 10; ++i) {
      auto f = co_await a.open("/hot", false, true);
      Payload p = co_await a.read(f, 0, 64_KiB);
      EXPECT_EQ(p.size(), 64_KiB);
      co_await a.close(f);
    }
    // Ten open/read/close cycles, zero RPCs: delegation + page cache.
    EXPECT_EQ(a.stats().rpcs, rpcs_before);
  }(d));
  d.simulation().run();
}

TEST(Delegation, RecalledWhenAnotherClientOpensForWrite) {
  Deployment d(small());
  d.simulation().spawn([](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    co_await seed_file(d, "/f", 1_MiB);
    auto& a = native(d, 0);
    auto& b = native(d, 1);

    auto fa = co_await a.open("/f", false, true);
    EXPECT_TRUE(a.file_has_delegation(fa));

    auto fb = co_await b.open("/f", false);  // write share: conflict
    EXPECT_FALSE(a.file_has_delegation(fa));
    EXPECT_EQ(a.delegation_recalls_served(), 1u);

    // After recall, A's reopen revalidates against B's changes.
    co_await b.write(fb, 0, Payload::from_string("BBBB"));
    co_await b.close(fb);
    co_await a.close(fa);
    auto fa2 = co_await a.open("/f", false, true);
    Payload p = co_await a.read(fa2, 0, 4);
    EXPECT_EQ(p, Payload::from_string("BBBB"));
    co_await a.close(fa2);
  }(d));
  d.simulation().run();
}

TEST(Delegation, TruncateRecallsDelegations) {
  Deployment d(small());
  d.simulation().spawn([](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    co_await seed_file(d, "/f", 1_MiB);
    auto& a = native(d, 0);
    auto& b = native(d, 1);
    auto fa = co_await a.open("/f", false, true);
    EXPECT_TRUE(a.file_has_delegation(fa));
    co_await b.truncate("/f", 64_KiB);
    EXPECT_FALSE(a.file_has_delegation(fa));
    co_await a.close(fa);
  }(d));
  d.simulation().run();
}

TEST(Delegation, TwoReadersBothHoldDelegations) {
  Deployment d(small());
  d.simulation().spawn([](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    co_await seed_file(d, "/f", 1_MiB);
    auto& a = native(d, 0);
    auto& b = native(d, 1);
    auto fa = co_await a.open("/f", false, true);
    auto fb = co_await b.open("/f", false, true);
    // Read delegations are shareable.
    EXPECT_TRUE(a.file_has_delegation(fa));
    EXPECT_TRUE(b.file_has_delegation(fb));
    co_await a.close(fa);
    co_await b.close(fb);
  }(d));
  d.simulation().run();
}

}  // namespace
}  // namespace dpnfs::core
