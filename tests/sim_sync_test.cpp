#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace dpnfs::sim {
namespace {

Task<void> hold(Simulation& sim, Semaphore& sem, Duration d, int tag,
                std::vector<int>& order) {
  co_await sem.acquire();
  order.push_back(tag);
  co_await sim.delay(d);
  sem.release();
}

TEST(Semaphore, SerializesExclusiveResource) {
  Simulation sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) sim.spawn(hold(sim, sem, ms(10), i, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), ms(40));
  EXPECT_EQ(sem.available(), 1u);
}

TEST(Semaphore, MultiplePermitsRunConcurrently) {
  Simulation sim;
  Semaphore sem(sim, 2);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) sim.spawn(hold(sim, sem, ms(10), i, order));
  sim.run();
  EXPECT_EQ(sim.now(), ms(20));  // two waves of two
}

Task<void> scoped_hold(Simulation& sim, Semaphore& sem, Duration d) {
  auto permit = co_await sem.scoped();
  co_await sim.delay(d);
  // permit released by RAII
}

TEST(Semaphore, ScopedPermitReleasesOnScopeExit) {
  Simulation sim;
  Semaphore sem(sim, 1);
  sim.spawn(scoped_hold(sim, sem, ms(5)));
  sim.spawn(scoped_hold(sim, sem, ms(5)));
  sim.run();
  EXPECT_EQ(sim.now(), ms(10));
  EXPECT_EQ(sem.available(), 1u);
}

Task<void> wait_latch(Latch& l, Simulation& sim, std::vector<Time>& out) {
  co_await l.wait();
  out.push_back(sim.now());
}

Task<void> set_latch_at(Simulation& sim, Latch& l, Duration d) {
  co_await sim.delay(d);
  l.set();
}

TEST(Latch, ReleasesAllWaitersOnSet) {
  Simulation sim;
  Latch latch(sim);
  std::vector<Time> times;
  sim.spawn(wait_latch(latch, sim, times));
  sim.spawn(wait_latch(latch, sim, times));
  sim.spawn(set_latch_at(sim, latch, ms(7)));
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], ms(7));
  EXPECT_EQ(times[1], ms(7));
}

TEST(Latch, WaitAfterSetIsImmediate) {
  Simulation sim;
  Latch latch(sim);
  latch.set();
  std::vector<Time> times;
  sim.spawn(wait_latch(latch, sim, times));
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 0);
}

Task<void> sleeper(Simulation& sim, Duration d) { co_await sim.delay(d); }

Task<void> join_group(Simulation& sim, WaitGroup& wg, Time& finished_at) {
  co_await wg.wait();
  finished_at = sim.now();
}

TEST(WaitGroup, WaitsForAllSpawnedTasks) {
  Simulation sim;
  WaitGroup wg(sim);
  wg.spawn(sleeper(sim, ms(3)));
  wg.spawn(sleeper(sim, ms(9)));
  wg.spawn(sleeper(sim, ms(6)));
  Time finished = -1;
  sim.spawn(join_group(sim, wg, finished));
  sim.run();
  EXPECT_EQ(finished, ms(9));
  EXPECT_EQ(wg.pending(), 0u);
}

TEST(WaitGroup, EmptyGroupDoesNotBlock) {
  Simulation sim;
  WaitGroup wg(sim);
  Time finished = -1;
  sim.spawn(join_group(sim, wg, finished));
  sim.run();
  EXPECT_EQ(finished, 0);
}

Task<void> take_oneshot(Oneshot<int>& o, std::optional<int>& out) {
  out = co_await o.take();
}

Task<void> set_oneshot_at(Simulation& sim, Oneshot<int>& o, Duration d, int v) {
  co_await sim.delay(d);
  o.set(v);
}

TEST(Oneshot, DeliversValueToWaiter) {
  Simulation sim;
  Oneshot<int> o(sim);
  std::optional<int> got;
  sim.spawn(take_oneshot(o, got));
  sim.spawn(set_oneshot_at(sim, o, ms(4), 99));
  sim.run();
  EXPECT_EQ(got, 99);
  EXPECT_EQ(sim.now(), ms(4));
}

TEST(Oneshot, SetBeforeTakeIsImmediate) {
  Simulation sim;
  Oneshot<int> o(sim);
  o.set(7);
  std::optional<int> got;
  sim.spawn(take_oneshot(o, got));
  sim.run();
  EXPECT_EQ(got, 7);
}

Task<void> producer(Simulation& sim, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await ch.send(i);
    co_await sim.delay(ms(1));
  }
  ch.close();
}

Task<void> consumer(Channel<int>& ch, std::vector<int>& out) {
  while (true) {
    auto item = co_await ch.recv();
    if (!item) break;
    out.push_back(*item);
  }
}

TEST(Channel, FifoDeliveryAndClose) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.spawn(consumer(ch, got));
  sim.spawn(producer(sim, ch, 5));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

Task<void> fast_producer(Channel<int>& ch, int n, Simulation& sim,
                         std::vector<Time>& send_times) {
  for (int i = 0; i < n; ++i) {
    co_await ch.send(i);
    send_times.push_back(sim.now());
  }
  ch.close();
}

Task<void> slow_consumer(Simulation& sim, Channel<int>& ch, Duration per_item) {
  while (true) {
    auto item = co_await ch.recv();
    if (!item) break;
    co_await sim.delay(per_item);
  }
}

TEST(Channel, BoundedChannelAppliesBackpressure) {
  Simulation sim;
  Channel<int> ch(sim, 2);
  std::vector<Time> send_times;
  sim.spawn(fast_producer(ch, 6, sim, send_times));
  sim.spawn(slow_consumer(sim, ch, ms(10)));
  sim.run();
  ASSERT_EQ(send_times.size(), 6u);
  // First two sends fill the buffer instantly; later sends must wait for
  // the consumer to drain.
  EXPECT_EQ(send_times[0], 0);
  EXPECT_EQ(send_times[1], 0);
  EXPECT_GT(send_times[5], ms(20));
}

TEST(Channel, RecvOnClosedEmptyChannelReturnsNullopt) {
  Simulation sim;
  Channel<int> ch(sim);
  ch.close();
  std::vector<int> got;
  sim.spawn(consumer(ch, got));
  sim.run();
  EXPECT_TRUE(got.empty());
}

TEST(Channel, PushIsNonSuspendingOnUnbounded) {
  Simulation sim;
  Channel<std::string> ch(sim);
  ch.push("a");
  ch.push("b");
  ch.close();
  std::vector<std::string> got;
  sim.spawn([](Channel<std::string>& c, std::vector<std::string>& out) -> Task<void> {
    while (auto v = co_await c.recv()) out.push_back(*v);
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace dpnfs::sim
