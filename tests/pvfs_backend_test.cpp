// PvfsBackend tests: the NFS-over-PVFS proxy used by the 2-/3-tier data
// servers and the plain NFSv4 server, including the stripe-view offset
// conversion and the FhRegistry control-protocol stand-in.
#include <gtest/gtest.h>

#include <memory>

#include "core/pvfs_backend.hpp"
#include "pvfs/meta_server.hpp"
#include "pvfs/storage_server.hpp"
#include "sim/network.hpp"
#include "util/bytes.hpp"

namespace dpnfs::core {
namespace {

using namespace dpnfs::util::literals;
using nfs::FileHandle;
using nfs::Status;
using rpc::Payload;
using sim::Task;

struct Rig {
  static constexpr int kStorage = 3;
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  std::vector<std::unique_ptr<lfs::ObjectStore>> stores;
  std::vector<std::unique_ptr<pvfs::PvfsStorageServer>> storage;
  std::unique_ptr<pvfs::PvfsMetaServer> meta;
  std::unique_ptr<pvfs::PvfsClient> pvfs_client;
  std::shared_ptr<FhRegistry> registry = std::make_shared<FhRegistry>();

  Rig() {
    std::vector<rpc::RpcAddress> addrs;
    for (int i = 0; i < kStorage; ++i) {
      auto& node = net.add_node(sim::NodeParams{
          .name = "io" + std::to_string(i),
          .nic = sim::NicParams{},
          .disk = sim::DiskParams{},
          .cpu = sim::CpuParams{}});
      stores.push_back(std::make_unique<lfs::ObjectStore>(node));
      storage.push_back(std::make_unique<pvfs::PvfsStorageServer>(
          fabric, node, rpc::kPvfsIoPort, *stores.back()));
      storage.back()->start();
      addrs.push_back(storage.back()->address());
    }
    pvfs::MetaServerConfig mcfg;
    mcfg.stripe_unit = 64_KiB;
    meta = std::make_unique<pvfs::PvfsMetaServer>(fabric, net.node(0),
                                                  rpc::kPvfsMetaPort, kStorage,
                                                  mcfg);
    meta->start();
    auto& cn = net.add_node(sim::NodeParams{.name = "proxy",
                                            .nic = sim::NicParams{},
                                            .disk = std::nullopt,
                                            .cpu = sim::CpuParams{}});
    pvfs::PvfsClientConfig ccfg;
    ccfg.vfs_meta_latency = 0;  // keep unit tests snappy
    pvfs_client = std::make_unique<pvfs::PvfsClient>(fabric, cn, meta->address(),
                                                     addrs, "proxy@SIM", ccfg);
  }

  void run(Task<void> t) {
    sim.spawn(std::move(t));
    sim.run();
  }
};

TEST(FhRegistry, InternAndLookup) {
  FhRegistry reg;
  EXPECT_EQ(reg.root().id, FhRegistry::kRootId);
  const FileHandle d = reg.intern_dir("/a");
  EXPECT_EQ(reg.intern_dir("/a"), d);  // idempotent
  EXPECT_EQ(reg.find_path("/a"), d);
  EXPECT_EQ(reg.find_path("/missing"), std::nullopt);
  FhRegistry::Entry* e = reg.find(d);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->is_dir);
  reg.rename("/a", "/b");
  EXPECT_EQ(reg.find_path("/a"), std::nullopt);
  EXPECT_EQ(reg.find_path("/b"), d);  // handle survives rename
  reg.erase("/b");
  EXPECT_EQ(reg.find(d), nullptr);
}

TEST(PvfsBackendProxy, NamespaceAndDataRoundTrip) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    PvfsBackend backend(*r.pvfs_client, r.registry);
    FileHandle dir, fh;
    nfs::Fattr attr;
    EXPECT_EQ(co_await backend.mkdir(backend.root_fh(), "d", &dir), Status::kOk);
    EXPECT_EQ(co_await backend.open(dir, "f", true, &fh, &attr), Status::kOk);
    nfs::StableHow committed;
    uint64_t post_change = 0;
    EXPECT_EQ(co_await backend.write(fh, 0, Payload::from_string("proxy data"),
                                     nfs::StableHow::kUnstable, &committed,
                                     &post_change),
              Status::kOk);
    EXPECT_GT(post_change, 0u);
    Payload out;
    bool eof = false;
    EXPECT_EQ(co_await backend.read(fh, 0, 10, &out, &eof), Status::kOk);
    EXPECT_EQ(out, Payload::from_string("proxy data"));
    EXPECT_EQ(co_await backend.commit(fh), Status::kOk);

    // Attribute gathering reports the true size.
    EXPECT_EQ(co_await backend.getattr(fh, &attr), Status::kOk);
    EXPECT_EQ(attr.size, 10u);

    // Namespace errors map to NFS statuses.
    FileHandle dummy;
    EXPECT_EQ(co_await backend.lookup(dir, "missing", &dummy), Status::kNoEnt);
    EXPECT_EQ(co_await backend.mkdir(dir, "", &dummy), Status::kInval);
  }(r));
}

TEST(PvfsBackendProxy, DescribeExposesNativeDistribution) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    PvfsBackend backend(*r.pvfs_client, r.registry);
    FileHandle fh;
    nfs::Fattr attr;
    EXPECT_EQ(co_await backend.open(backend.root_fh(), "f", true, &fh, &attr),
              Status::kOk);
    PfsLayoutDescription desc;
    EXPECT_TRUE(backend.describe(fh, &desc));
    EXPECT_EQ(desc.stripe_unit, 64_KiB);
    EXPECT_EQ(desc.placements.size(), 3u);
    // Directories have no layout.
    EXPECT_FALSE(backend.describe(backend.root_fh(), &desc));
  }(r));
}

TEST(PvfsBackendProxy, StripeViewConvertsDenseOffsetsToFileOffsets) {
  // A 2-tier data server for device index 1 of 3 with 64 KiB stripes:
  // device offset 0      -> file offset 64 KiB   (stripe 1)
  // device offset 64 KiB -> file offset 256 KiB  (stripe 4)
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    PvfsBackend mds(*r.pvfs_client, r.registry);
    FileHandle fh;
    nfs::Fattr attr;
    EXPECT_EQ(co_await mds.open(mds.root_fh(), "f", true, &fh, &attr),
              Status::kOk);
    // Write a recognizable pattern through the MDS path (logical offsets).
    std::vector<std::byte> content(512_KiB);
    for (size_t i = 0; i < content.size(); ++i) {
      content[i] = static_cast<std::byte>((i / 64_KiB) & 0xFF);  // stripe idx
    }
    nfs::StableHow committed;
    uint64_t post_change = 0;
    EXPECT_EQ(co_await mds.write(fh, 0, Payload::inline_bytes(content),
                                 nfs::StableHow::kUnstable, &committed,
                                 &post_change),
              Status::kOk);

    PvfsBackend ds1(*r.pvfs_client, r.registry, StripeView{64_KiB, 3, 1});
    Payload out;
    bool eof = false;
    // Dense device offset 0 on device 1 == logical stripe 1.
    EXPECT_EQ(co_await ds1.read(fh, 0, 64_KiB, &out, &eof), Status::kOk);
    EXPECT_TRUE(out.is_inline());
    EXPECT_EQ(out.data()[0], std::byte{1});
    // Dense device offset 64 KiB on device 1 == logical stripe 4.
    EXPECT_EQ(co_await ds1.read(fh, 64_KiB, 64_KiB, &out, &eof), Status::kOk);
    EXPECT_TRUE(out.is_inline());
    EXPECT_EQ(out.data()[0], std::byte{4});
  }(r));
}

TEST(PvfsBackendProxy, StripeViewWriteRoundTrip) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    PvfsBackend mds(*r.pvfs_client, r.registry);
    FileHandle fh;
    nfs::Fattr attr;
    EXPECT_EQ(co_await mds.open(mds.root_fh(), "g", true, &fh, &attr),
              Status::kOk);
    PvfsBackend ds0(*r.pvfs_client, r.registry, StripeView{64_KiB, 3, 0});
    // Write 2 dense stripes through DS0: logical stripes 0 and 3.
    std::vector<std::byte> data(128_KiB, std::byte{0xAB});
    nfs::StableHow committed;
    uint64_t post_change = 0;
    EXPECT_EQ(co_await ds0.write(fh, 0, Payload::inline_bytes(data),
                                 nfs::StableHow::kUnstable, &committed,
                                 &post_change),
              Status::kOk);
    // Read logically through the MDS: stripe 0 == 0xAB, stripe 1 missing,
    // stripe 3 == 0xAB.
    Payload out;
    bool eof = false;
    EXPECT_EQ(co_await mds.read(fh, 0, 1, &out, &eof), Status::kOk);
    EXPECT_EQ(out.data()[0], std::byte{0xAB});
    EXPECT_EQ(co_await mds.read(fh, 3 * 64_KiB, 1, &out, &eof), Status::kOk);
    EXPECT_EQ(out.data()[0], std::byte{0xAB});
  }(r));
}

TEST(PvfsBackendProxy, StaleHandleRejected) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    PvfsBackend backend(*r.pvfs_client, r.registry);
    Payload out;
    bool eof = false;
    EXPECT_EQ(co_await backend.read(FileHandle{9999}, 0, 10, &out, &eof),
              Status::kStale);
    nfs::Fattr attr;
    EXPECT_EQ(co_await backend.getattr(FileHandle{9999}, &attr), Status::kStale);
  }(r));
}

}  // namespace
}  // namespace dpnfs::core
