// Seeded chaos soak: randomized DS/MDS service restarts under concurrent
// writers, on every access architecture (`ctest -L chaos`).
//
// A SplitMix64-derived schedule crashes four data-server daemons and one
// MDS while three client nodes stream writes.  The harness asserts the
// crash-consistency contract end to end:
//   - every file reads back byte-identical to an in-memory oracle (no
//     unstable extent was lost, despite the restarts dropping dirty state);
//   - the clients' `client.replay` counters show the loss was detected and
//     replayed (verifier mismatches > 0), not silently absorbed;
//   - the scheduled restarts actually happened (boot instances advanced);
//   - two invocations with the same seed are bit-identical — same finish
//     time, same replay counters, same per-writer chunk counts — so any
//     failure is replayable from its seed alone.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/adapters.hpp"
#include "core/deployment.hpp"
#include "rpc/fabric.hpp"
#include "sim/fault.hpp"
#include "sim/sync.hpp"
#include "util/bytes.hpp"

namespace dpnfs {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

constexpr uint64_t kSeed = 1013;
constexpr size_t kWriters = 3;
constexpr uint64_t kChunk = 512_KiB;
constexpr sim::Time kWriteUntil = sim::ms(3700);  // past the last window

/// SplitMix64: tiny, seedable, and identical on every platform — the whole
/// schedule derives from one uint64_t.
uint64_t next_rand(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Oracle content: every byte is a function of its absolute position in the
/// writer's keyspace, so any reassembly is checkable.
Payload chaos_pattern(uint64_t base, uint64_t length) {
  std::vector<std::byte> v(length);
  for (uint64_t i = 0; i < length; ++i) {
    const uint64_t o = base + i;
    v[i] = static_cast<std::byte>((o * 167 + (o >> 13) * 11 + 5) & 0xFF);
  }
  return Payload::inline_bytes(std::move(v));
}

struct ServiceTarget {
  uint32_t node = 0;
  uint16_t port = 0;
  auto operator<=>(const ServiceTarget&) const = default;
};

/// Data-server daemon for "the i-th dice roll", per architecture (same
/// node/port mapping as `simulate --chaos-seed`).
ServiceTarget ds_target(const core::ClusterConfig& cfg, uint64_t i) {
  switch (cfg.architecture) {
    case core::Architecture::kNativePvfs:
      return {static_cast<uint32_t>(i % cfg.storage_nodes), rpc::kPvfsIoPort};
    case core::Architecture::kPnfs3Tier:
      return {cfg.storage_nodes / 2 +
                  static_cast<uint32_t>(i % cfg.three_tier_data_servers),
              rpc::kNfsPort};
    case core::Architecture::kPlainNfs:
      return {cfg.storage_nodes, rpc::kNfsPort};
    default:  // Direct-pNFS and 2-tier: DS daemons on the storage nodes
      return {static_cast<uint32_t>(i % cfg.storage_nodes), rpc::kNfsPort};
  }
}

ServiceTarget mds_target(const core::ClusterConfig& cfg) {
  switch (cfg.architecture) {
    case core::Architecture::kNativePvfs:
      return {0, rpc::kPvfsMetaPort};
    case core::Architecture::kPnfs3Tier:
      return {cfg.storage_nodes / 2, core::kMdsPort};
    case core::Architecture::kPlainNfs:
      return {cfg.storage_nodes, rpc::kNfsPort};
    default:
      return {0, core::kMdsPort};
  }
}

/// Retries `make_op()` (a fresh Task per attempt) until it stops throwing.
/// Restart windows last <= 400 ms and the client stacks carry their own
/// retry budgets, so 80 x 100 ms is far beyond any reachable outage.
template <typename MakeOp>
Task<bool> retry_op(sim::Simulation& sim, MakeOp make_op) {
  for (int attempt = 0; attempt < 80; ++attempt) {
    bool failed = false;
    try {
      co_await make_op();
    } catch (const std::exception&) {
      failed = true;
    }
    if (!failed) co_return true;
    co_await sim.delay(sim::ms(100));
  }
  co_return false;
}

struct ChaosOutcome {
  sim::Time finished = 0;
  uint64_t verifier_mismatches = 0;
  uint64_t replayed_extents = 0;
  uint64_t replayed_bytes = 0;
  uint64_t restarts_observed = 0;
  uint64_t ds_windows = 0;
  uint64_t mds_windows = 0;
  uint64_t traces_sampled = 0;
  uint64_t traces_promoted = 0;
  uint64_t sampled_trace_hash = 0;  // order-independent digest of the set
  std::vector<uint64_t> chunks;  // per writer
  bool writers_ok = false;
  bool data_ok = false;

  bool operator==(const ChaosOutcome&) const = default;
};

struct ScenarioState {
  std::vector<uint64_t> chunks = std::vector<uint64_t>(kWriters, 0);
  std::vector<char> writer_ok = std::vector<char>(kWriters, 0);
  bool data_ok = false;
};

Task<void> writer_main(core::Deployment& d, size_t i, uint64_t& chunks,
                       char& ok) {
  auto& sim = d.simulation();
  const uint64_t base = static_cast<uint64_t>(i) << 40;
  const std::string path = "/chaos/f" + std::to_string(i);
  auto f = co_await d.client(i).open(path, true);  // pre-chaos: no faults yet
  uint64_t n = 0;
  bool gave_up = false;
  while (sim.now() < kWriteUntil) {
    const uint64_t off = n * kChunk;
    if (!co_await retry_op(sim, [&] {
          return f->write(off, chaos_pattern(base + off, kChunk));
        })) {
      gave_up = true;
      break;
    }
    ++n;
    // Occasional fsync: COMMITs land at staggered times, so restarts race
    // both in-flight WRITEs and long WRITE->COMMIT unstable windows (the
    // low cadence is what leaves streamed extents exposed to the crashes).
    if (n % 6 == 0 &&
        !co_await retry_op(sim, [&] { return f->fsync(); })) {
      gave_up = true;
      break;
    }
    co_await sim.delay(sim::ms(100));
  }
  chunks = n;
  if (gave_up || !co_await retry_op(sim, [&] { return f->fsync(); })) {
    co_return;  // ok stays false; the test reports the stuck writer
  }
  try {
    co_await f->close();
  } catch (const std::exception&) {
    // Data is already durable (fsync above); a close-time hiccup is not a
    // soak failure.
  }
  ok = 1;
}

Task<void> chaos_scenario(core::Deployment& d, ScenarioState& st) {
  co_await d.mount_all();
  co_await d.client(0).mkdir("/chaos");
  sim::WaitGroup wg(d.simulation());
  for (size_t i = 0; i < kWriters; ++i) {
    wg.spawn(writer_main(d, i, st.chunks[i], st.writer_ok[i]));
  }
  co_await wg.wait();

  // Verification phase: a fourth client (cold cache) reads every file back
  // and compares against the oracle byte-for-byte.
  bool all_ok = true;
  try {
    for (size_t i = 0; i < kWriters; ++i) {
      const uint64_t base = static_cast<uint64_t>(i) << 40;
      const uint64_t size = st.chunks[i] * kChunk;
      auto g = co_await d.client(kWriters).open_read("/chaos/f" +
                                                     std::to_string(i));
      Payload back = co_await g->read(0, size);
      if (!(back == chaos_pattern(base, size))) all_ok = false;
      co_await g->close();
    }
  } catch (const std::exception&) {
    all_ok = false;
  }
  st.data_ok = all_ok;
}

ChaosOutcome run_chaos(core::Architecture arch, uint64_t seed) {
  core::ClusterConfig cfg;
  cfg.architecture = arch;
  cfg.storage_nodes = 4;
  cfg.clients = kWriters + 1;  // 3 writers + 1 cold-cache verifier
  cfg.three_tier_data_servers = 2;

  // Restart-recovery posture (mirrors `simulate --chaos-seed`): bounded
  // per-RPC deadlines, generous retry ladders, an MDS grace window, and
  // COMMITs deferred so unstable data is genuinely exposed to the crashes.
  cfg.nfs_client.ds_timeout = sim::ms(250);
  cfg.nfs_client.ds_rpc_retries = 8;
  cfg.nfs_client.slice_retries = 4;
  cfg.nfs_client.breaker_threshold = 4;
  cfg.nfs_client.breaker_reset = sim::ms(500);
  cfg.nfs_client.mds_timeout = sim::ms(500);
  cfg.nfs_client.wb_commit_backlog = 16_MiB;
  // Chunk-sized WRITEs stream out the moment the application writes them,
  // so every architecture continuously holds unstable extents for the
  // restart windows to destroy (2 MiB wsize would batch them into the
  // fsync itself, shrinking the WRITE->COMMIT exposure to microseconds).
  cfg.nfs_client.wsize = static_cast<uint32_t>(kChunk);
  cfg.mds_grace_period = sim::ms(100);
  cfg.pvfs_client.io_timeout = sim::ms(250);
  cfg.pvfs_client.io_retries = 10;
  cfg.pvfs_client.meta_timeout = sim::ms(500);
  cfg.pvfs_client.meta_retries = 6;
  // Head-sample half the traces (seeded => bit-reproducible) and tail-keep
  // anything slow or errored: the soak doubles as the proof that sampling
  // never perturbs simulation outcomes or its own determinism under chaos.
  cfg.trace_sample_rate = 0.5;
  cfg.trace_sample_seed = seed;
  cfg.trace_slo_threshold = sim::ms(400);
  if (arch == core::Architecture::kDirectPnfs) {
    // A Direct-pNFS DS and the co-located PVFS daemon share one object
    // store but carry independent boot verifiers: MDS-fallback writes
    // landed during a DS outage would be destroyed undetectably by the
    // DS's revive-time dirty drop.  Replay-through-retry is the only
    // loss-proof recovery path under restart faults (docs/failures.md).
    cfg.nfs_client.mds_fallback = false;
  }

  // Five non-overlapping restart windows in 600 ms slots (start jitter
  // < 120 ms, duration < 400 ms), so even same-target windows — plain NFS
  // has only one service — stay distinct restarts.  Slot 2 is the MDS.
  ChaosOutcome out;
  uint64_t rng = seed;
  std::set<ServiceTarget> targets;
  for (int slot = 0; slot < 5; ++slot) {
    const sim::Time at =
        sim::ms(300 + 600 * slot + static_cast<int64_t>(next_rand(rng) % 120));
    const sim::Time revive =
        at + sim::ms(150 + static_cast<int64_t>(next_rand(rng) % 250));
    const ServiceTarget t = slot == 2 ? mds_target(cfg)
                                      : ds_target(cfg, next_rand(rng));
    cfg.faults.crash_service(t.node, t.port, at, revive);
    targets.insert(t);
    slot == 2 ? ++out.mds_windows : ++out.ds_windows;
  }

  core::Deployment d(cfg);
  ScenarioState st;
  d.simulation().spawn(chaos_scenario(d, st));
  d.simulation().run();

  out.finished = d.simulation().now();
  out.chunks = st.chunks;
  out.data_ok = st.data_ok;
  if (!st.data_ok) {
    // Oracle mismatch: dump the flight recorder so the seconds before the
    // corruption are on record.  Same seed => same dump, so the saved file
    // is a standalone reproduction of the failure.
    const std::string path = "chaos_flight_" +
                             std::string(core::architecture_name(arch)) + "_" +
                             std::to_string(seed) + ".json";
    if (d.write_flight(path)) {
      ADD_FAILURE() << "chaos oracle mismatch; flight dump written to "
                    << path;
    } else {
      ADD_FAILURE() << "chaos oracle mismatch; flight dump:\n"
                    << d.flight_json();
    }
  }
  out.writers_ok = true;
  for (char ok : st.writer_ok) out.writers_ok = out.writers_ok && ok != 0;
  for (size_t i = 0; i < kWriters; ++i) {
    auto& c = d.client(i);
    if (auto* n = dynamic_cast<core::NfsFileSystemClient*>(&c)) {
      const nfs::ClientStats& s = n->native().stats();
      out.verifier_mismatches += s.verifier_mismatches;
      out.replayed_extents += s.replayed_extents;
      out.replayed_bytes += s.replayed_bytes;
    } else if (auto* p = dynamic_cast<core::PvfsFileSystemClient*>(&c)) {
      const pvfs::PvfsClientStats& s = p->native().stats();
      out.verifier_mismatches += s.verifier_mismatches;
      out.replayed_extents += s.replayed_extents;
      out.replayed_bytes += s.replayed_bytes;
    }
  }
  if (const sim::FaultInjector* inj = d.fault_injector()) {
    for (const ServiceTarget& t : targets) {
      out.restarts_observed +=
          inj->boot_instance(t.node, t.port, d.simulation().now()) - 1;
    }
  }
  out.traces_sampled = d.tracer().traces_sampled();
  out.traces_promoted = d.tracer().traces_promoted();
  // XOR of retained trace ids: identical iff both runs retained the same
  // trace-id set, regardless of retention order.
  std::set<uint64_t> retained_ids;
  for (const auto& s : d.tracer().retained_spans()) {
    retained_ids.insert(s.trace_id);
  }
  for (uint64_t id : retained_ids) {
    out.sampled_trace_hash ^= id * 0x9E3779B97F4A7C15ull;
  }
  return out;
}

void expect_sound(const ChaosOutcome& out) {
  EXPECT_TRUE(out.writers_ok);  // no writer exhausted its retry budget
  EXPECT_TRUE(out.data_ok);     // byte-identical to the oracle: zero loss
  EXPECT_GE(out.ds_windows, 3u);
  EXPECT_GE(out.mds_windows, 1u);
  // Every scheduled window produced a distinct boot instance.
  EXPECT_EQ(out.restarts_observed, out.ds_windows + out.mds_windows);
  // The crashes really destroyed unstable state, and the clients detected
  // and replayed it — the soak is vacuous if nothing was ever at risk.
  EXPECT_GE(out.verifier_mismatches, 1u);
  EXPECT_GE(out.replayed_extents, 1u);
  EXPECT_GE(out.replayed_bytes, kChunk);
  for (uint64_t n : out.chunks) EXPECT_GE(n, 4u);  // writers made progress
  // Sampling ran (half rate leaves both sampled and unsampled traces) and
  // the chaos-injected timeouts tail-promoted at least one errored trace.
  EXPECT_GE(out.traces_sampled, 1u);
  EXPECT_GE(out.traces_promoted, 1u);
}

void run_arch(core::Architecture arch) {
  const ChaosOutcome a = run_chaos(arch, kSeed);
  expect_sound(a);
  // Bit-reproducible: a second same-seed invocation matches exactly —
  // finish time, replay counters, restart count, per-writer progress.
  const ChaosOutcome b = run_chaos(arch, kSeed);
  EXPECT_TRUE(a == b);
}

TEST(ChaosSoak, DirectPnfs) { run_arch(core::Architecture::kDirectPnfs); }
TEST(ChaosSoak, NativePvfs) { run_arch(core::Architecture::kNativePvfs); }
TEST(ChaosSoak, Pnfs2Tier) { run_arch(core::Architecture::kPnfs2Tier); }
TEST(ChaosSoak, Pnfs3Tier) { run_arch(core::Architecture::kPnfs3Tier); }
TEST(ChaosSoak, PlainNfs) { run_arch(core::Architecture::kPlainNfs); }

}  // namespace
}  // namespace dpnfs
