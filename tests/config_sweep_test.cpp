// Parameterized robustness sweep: data integrity must hold across the whole
// configuration space (stripe sizes, rsize/wsize, client counts, cache
// settings), not just the paper's defaults.
#include <gtest/gtest.h>

#include <tuple>

#include "core/deployment.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace dpnfs::core {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

// (stripe_unit, rsize/wsize, data_cache)
using Params = std::tuple<uint64_t, uint32_t, bool>;

class ConfigSweep : public ::testing::TestWithParam<Params> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigSweep,
    ::testing::Combine(
        ::testing::Values<uint64_t>(64_KiB, 256_KiB, 2_MiB),   // stripe
        ::testing::Values<uint32_t>(64 * 1024, 2 * 1024 * 1024),  // r/wsize
        ::testing::Bool()),                                    // cache
    [](const ::testing::TestParamInfo<Params>& info) {
      return "stripe" + std::to_string(std::get<0>(info.param) / 1024) +
             "k_io" + std::to_string(std::get<1>(info.param) / 1024) + "k_" +
             (std::get<2>(info.param) ? "cached" : "uncached");
    });

TEST_P(ConfigSweep, PatternSurvivesWriteReadOnDirectPnfs) {
  const auto [stripe, iosize, cache] = GetParam();
  ClusterConfig cfg;
  cfg.architecture = Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 1;
  cfg.stripe_unit = stripe;
  cfg.nfs_client.rsize = iosize;
  cfg.nfs_client.wsize = iosize;
  cfg.nfs_client.data_cache = cache;
  Deployment d(cfg);

  bool done = false;
  d.simulation().spawn([](Deployment& d, bool& done) -> Task<void> {
    co_await d.mount_all();
    auto f = co_await d.client(0).open("/sweep", true);
    // A pattern crossing many stripe/io-size boundaries, written in odd
    // sized pieces.
    constexpr uint64_t kTotal = 1'500'000;
    std::vector<std::byte> pattern(kTotal);
    for (size_t i = 0; i < kTotal; ++i) {
      pattern[i] = static_cast<std::byte>((i * 193 + 7) & 0xFF);
    }
    util::Rng rng(17);
    uint64_t pos = 0;
    while (pos < kTotal) {
      const uint64_t n = std::min<uint64_t>(rng.range(1, 100'000), kTotal - pos);
      co_await f->write(pos, Payload::inline_bytes(std::vector<std::byte>(
                                 pattern.begin() + static_cast<ptrdiff_t>(pos),
                                 pattern.begin() + static_cast<ptrdiff_t>(pos + n))));
      pos += n;
    }
    co_await f->close();
    d.client(0).drop_caches();

    auto g = co_await d.client(0).open("/sweep", false);
    EXPECT_EQ(g->size(), kTotal);
    // Read back in different odd sizes.
    pos = 0;
    util::Rng rng2(23);
    bool match = true;
    while (pos < kTotal && match) {
      const uint64_t n = std::min<uint64_t>(rng2.range(1, 80'000), kTotal - pos);
      Payload p = co_await g->read(pos, n);
      if (!p.is_inline() || p.size() != n) {
        match = false;
        break;
      }
      for (uint64_t i = 0; i < n; ++i) {
        if (p.data()[i] != pattern[pos + i]) {
          match = false;
          break;
        }
      }
      pos += n;
    }
    EXPECT_TRUE(match) << "mismatch near offset " << pos;
    co_await g->close();
    done = true;
  }(d, done));
  d.simulation().run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace dpnfs::core
