// Permanent data-server loss under load (`ctest -L chaos -L faults`).
//
// One storage node is killed for good — NFS data server and PVFS storage
// daemon both, never revived — while three writers stream chunks.  The
// harness asserts the full survival story from ISSUE/docs/failures.md:
//   - writers never error: outage-time writes are absorbed by the surviving
//     replica (mirror) or carried by parity (erasure);
//   - a cold reader with stale placement gets every byte back through the
//     degraded machinery, byte-identical to the oracle;
//   - `client.recovery.mds_fallbacks` stays pinned at zero on every client:
//     redundancy, not the MDS proxy, served the degraded bytes;
//   - the rebuild service declares the node dead, re-materializes its
//     objects onto the spare, and a fresh-layout verifier then reads the
//     rebuilt copies byte-identical;
//   - two same-seed invocations produce bit-identical outcomes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/adapters.hpp"
#include "core/deployment.hpp"
#include "rpc/fabric.hpp"
#include "sim/sync.hpp"
#include "util/bytes.hpp"

namespace dpnfs {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

constexpr size_t kWriters = 3;
constexpr uint64_t kChunk = 256_KiB;
constexpr sim::Time kKillAt = sim::ms(1500);
constexpr sim::Time kWriteUntil = sim::ms(3000);
constexpr uint32_t kVictim = 1;  // never node 0: it hosts MDS + rebuild

Payload chaos_pattern(uint64_t base, uint64_t length) {
  std::vector<std::byte> v(length);
  for (uint64_t i = 0; i < length; ++i) {
    const uint64_t o = base + i;
    v[i] = static_cast<std::byte>((o * 167 + (o >> 13) * 11 + 5) & 0xFF);
  }
  return Payload::inline_bytes(std::move(v));
}

struct KillOutcome {
  sim::Time finished = 0;
  std::vector<uint64_t> chunks;  // per writer
  bool writers_ok = false;
  bool degraded_data_ok = false;  // stale-placement reads during the outage
  bool rebuilt_data_ok = false;   // fresh-layout reads after the rebuild
  bool rebuild_completed = false;
  uint64_t mds_fallbacks = 0;     // summed over every client: must be 0
  uint64_t degraded_writes = 0;
  uint64_t degraded_reads = 0;
  uint64_t replica_reroutes = 0;
  uint64_t ec_reconstructions = 0;
  uint64_t dses_declared_dead = 0;
  uint64_t objects_rebuilt = 0;
  uint64_t objects_failed = 0;
  uint64_t bytes_rebuilt = 0;

  bool operator==(const KillOutcome&) const = default;
};

struct ScenarioState {
  std::vector<uint64_t> chunks = std::vector<uint64_t>(kWriters, 0);
  std::vector<char> writer_ok = std::vector<char>(kWriters, 0);
  bool degraded_ok = false;
  bool rebuilt_ok = false;
  bool rebuild_completed = false;
};

Task<void> writer_main(core::Deployment& d, size_t i, uint64_t& chunks,
                       char& ok) {
  auto& sim = d.simulation();
  const uint64_t base = static_cast<uint64_t>(i) << 40;
  auto f = co_await d.client(i).open("/pk/f" + std::to_string(i), true);
  uint64_t n = 0;
  while (sim.now() < kWriteUntil) {
    // No retry wrapper: absorbed-by-redundancy writes must never throw.
    co_await f->write(n * kChunk, chaos_pattern(base + n * kChunk, kChunk));
    ++n;
    if (n % 6 == 0) co_await f->fsync();
    co_await sim.delay(sim::ms(100));
  }
  chunks = n;
  co_await f->fsync();
  try {
    co_await f->close();
  } catch (const std::exception&) {
    // Close-time attribute gathering may brush the dead daemon; the data
    // above is already durable.
  }
  ok = 1;
}

Task<void> scenario(core::Deployment& d, ScenarioState& st) {
  auto& sim = d.simulation();
  co_await d.mount_all();
  co_await d.client(0).mkdir("/pk");
  sim::WaitGroup wg(sim);
  for (size_t i = 0; i < kWriters; ++i) {
    wg.spawn(writer_main(d, i, st.chunks[i], st.writer_ok[i]));
  }
  co_await wg.wait();

  // Phase 1 — degraded reads: a cold client whose layouts still point at
  // the dead node (the rebuild has not been declared yet) reads every file
  // back through the surviving redundancy.
  bool degraded_ok = true;
  try {
    for (size_t i = 0; i < kWriters; ++i) {
      const uint64_t base = static_cast<uint64_t>(i) << 40;
      const uint64_t size = st.chunks[i] * kChunk;
      auto g =
          co_await d.client(kWriters).open_read("/pk/f" + std::to_string(i));
      Payload back = co_await g->read(0, size);
      if (!(back == chaos_pattern(base, size))) degraded_ok = false;
      co_await g->close();
    }
  } catch (const std::exception&) {
    degraded_ok = false;
  }
  st.degraded_ok = degraded_ok;

  // Phase 2 — wait for the rebuild service to declare the node dead and
  // re-materialize its objects onto the spare.
  for (int spin = 0; spin < 200; ++spin) {
    if (d.rebuild() != nullptr &&
        d.rebuild()->stats().rebuilds_completed >= 1) {
      st.rebuild_completed = true;
      break;
    }
    co_await sim.delay(sim::ms(100));
  }
  d.stop_rebuild();
  if (!st.rebuild_completed) co_return;

  // Phase 3 — a fresh-layout verifier now reads the retargeted placement:
  // the rebuilt objects on the spare must be byte-identical too.
  bool rebuilt_ok = true;
  try {
    for (size_t i = 0; i < kWriters; ++i) {
      const uint64_t base = static_cast<uint64_t>(i) << 40;
      const uint64_t size = st.chunks[i] * kChunk;
      auto g = co_await d.client(kWriters + 1)
                   .open_read("/pk/f" + std::to_string(i));
      Payload back = co_await g->read(0, size);
      if (!(back == chaos_pattern(base, size))) rebuilt_ok = false;
      co_await g->close();
    }
  } catch (const std::exception&) {
    rebuilt_ok = false;
  }
  st.rebuilt_ok = rebuilt_ok;
}

KillOutcome run_kill(core::ClusterConfig cfg) {
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.clients = kWriters + 2;  // writers + degraded reader + rebuilt verifier
  cfg.stripe_unit = 256_KiB;

  // Fast-failure posture: bounded per-RPC deadlines and a hair-trigger
  // breaker, so dead-node slices fall through to the degraded rungs quickly.
  cfg.nfs_client.ds_timeout = sim::ms(200);
  cfg.nfs_client.ds_rpc_retries = 2;
  cfg.nfs_client.slice_retries = 1;
  cfg.nfs_client.breaker_threshold = 2;
  cfg.nfs_client.breaker_reset = sim::ms(400);
  cfg.nfs_client.mds_timeout = sim::ms(500);
  cfg.nfs_client.wsize = static_cast<uint32_t>(kChunk);
  cfg.pvfs_client.io_timeout = sim::ms(200);
  cfg.pvfs_client.io_retries = 2;
  // mds_fallback stays at its default (enabled): the point of the oracle is
  // that redundant layouts never take it even when it is allowed.

  // The rebuild declares death only after the writers' final fsync
  // (kWriteUntil + slack), so the copy sources include every absorbed byte.
  cfg.rebuild_enabled = true;
  cfg.rebuild.check_interval = sim::ms(100);
  cfg.rebuild.dead_threshold = sim::ms(1800);
  cfg.rebuild.chunk_bytes = 512_KiB;
  cfg.rebuild.rate_bytes_per_sec = 200'000'000;  // exercise the throttle

  cfg.faults.crash_service(kVictim, rpc::kNfsPort, kKillAt);
  cfg.faults.crash_service(kVictim, rpc::kPvfsIoPort, kKillAt);

  core::Deployment d(cfg);
  d.start_rebuild();
  ScenarioState st;
  d.simulation().spawn(scenario(d, st));
  d.simulation().run();

  KillOutcome out;
  out.finished = d.simulation().now();
  out.chunks = st.chunks;
  out.writers_ok = true;
  for (char ok : st.writer_ok) out.writers_ok = out.writers_ok && ok != 0;
  out.degraded_data_ok = st.degraded_ok;
  out.rebuilt_data_ok = st.rebuilt_ok;
  out.rebuild_completed = st.rebuild_completed;
  for (size_t i = 0; i < cfg.clients; ++i) {
    const nfs::ClientStats& s =
        dynamic_cast<core::NfsFileSystemClient&>(d.client(i)).native().stats();
    out.mds_fallbacks += s.mds_fallbacks;
    out.degraded_writes += s.degraded_writes;
    out.degraded_reads += s.degraded_reads;
    out.replica_reroutes += s.replica_reroutes;
    out.ec_reconstructions += s.ec_reconstructions;
  }
  if (const core::RebuildManager* r = d.rebuild()) {
    const core::RebuildStats& rs = r->stats();
    out.dses_declared_dead = rs.dses_declared_dead;
    out.objects_rebuilt = rs.objects_rebuilt;
    out.objects_failed = rs.objects_failed;
    out.bytes_rebuilt = rs.bytes_rebuilt;
  }
  if (!st.degraded_ok || !st.rebuilt_ok) {
    ADD_FAILURE() << "permanent-kill oracle mismatch; flight dump:\n"
                  << d.flight_json();
  }
  // The rebuild lifecycle is on the flight-recorder record.
  const std::string flight = d.flight_json();
  EXPECT_NE(flight.find("ds.declared_dead"), std::string::npos);
  EXPECT_NE(flight.find("rebuild.start"), std::string::npos);
  EXPECT_NE(flight.find("rebuild.complete"), std::string::npos);
  return out;
}

void expect_sound(const KillOutcome& out, bool erasure) {
  EXPECT_TRUE(out.writers_ok);        // no writer ever saw an error
  EXPECT_TRUE(out.degraded_data_ok);  // byte-identical through redundancy
  EXPECT_TRUE(out.rebuild_completed);
  EXPECT_TRUE(out.rebuilt_data_ok);   // byte-identical off the spare
  EXPECT_EQ(out.mds_fallbacks, 0u);   // the pinned oracle
  EXPECT_GE(out.degraded_writes, 1u);
  EXPECT_GE(out.degraded_reads + out.replica_reroutes, 1u);
  if (erasure) {
    EXPECT_GE(out.ec_reconstructions, 1u);
  }
  EXPECT_EQ(out.dses_declared_dead, 1u);
  EXPECT_GE(out.objects_rebuilt, 1u);
  EXPECT_EQ(out.objects_failed, 0u);
  EXPECT_GE(out.bytes_rebuilt, kChunk);
  for (uint64_t n : out.chunks) EXPECT_GE(n, 4u);
}

void run_twice(core::ClusterConfig cfg, bool erasure) {
  const KillOutcome a = run_kill(cfg);
  expect_sound(a, erasure);
  const KillOutcome b = run_kill(cfg);
  EXPECT_TRUE(a == b);  // bit-reproducible end to end
}

TEST(PermanentKill, MirrorRebuildsOntoSpare) {
  core::ClusterConfig cfg;
  cfg.storage_nodes = 4;  // 3 active + 1 spare
  cfg.spare_nodes = 1;
  cfg.distribution = pvfs::DistKind::kMirror;
  cfg.replicas = 2;
  run_twice(cfg, /*erasure=*/false);
}

TEST(PermanentKill, ErasureRebuildsOntoSpare) {
  core::ClusterConfig cfg;
  cfg.storage_nodes = 7;  // 6 active (4+2) + 1 spare
  cfg.spare_nodes = 1;
  cfg.distribution = pvfs::DistKind::kErasure;
  cfg.ec_k = 4;
  cfg.ec_m = 2;
  run_twice(cfg, /*erasure=*/true);
}

}  // namespace
}  // namespace dpnfs
