#include <gtest/gtest.h>

#include "sim/resources.hpp"
#include "sim/simulation.hpp"

namespace dpnfs::sim {
namespace {

Task<void> disk_io(Disk& d, uint64_t pos, uint64_t bytes) {
  co_await d.io(pos, bytes);
}

TEST(Disk, SequentialTransferTime) {
  Simulation sim;
  DiskParams p{.bytes_per_sec = 100e6, .positioning = ms(8), .per_request = 0};
  Disk disk(sim, p);
  // First I/O at position 0 with head at 0: no positioning cost.
  sim.spawn(disk_io(disk, 0, 100'000'000));
  sim.run();
  EXPECT_EQ(sim.now(), sec(1));
  EXPECT_EQ(disk.head_position(), 100'000'000u);
}

Task<void> two_sequential_ios(Disk& d) {
  co_await d.io(0, 1'000'000);
  co_await d.io(1'000'000, 1'000'000);  // contiguous: no seek
}

TEST(Disk, ContiguousIoSkipsPositioning) {
  Simulation sim;
  DiskParams p{.bytes_per_sec = 100e6, .positioning = ms(8), .per_request = 0};
  Disk disk(sim, p);
  sim.spawn(two_sequential_ios(disk));
  sim.run();
  EXPECT_EQ(sim.now(), ms(20));  // 2 x 10ms transfer, no seek
}

Task<void> two_random_ios(Disk& d) {
  co_await d.io(0, 1'000'000);
  co_await d.io(500'000'000, 1'000'000);  // far away: seek
}

TEST(Disk, DiscontiguousIoPaysPositioning) {
  Simulation sim;
  DiskParams p{.bytes_per_sec = 100e6, .positioning = ms(8), .per_request = 0};
  Disk disk(sim, p);
  sim.spawn(two_random_ios(disk));
  sim.run();
  EXPECT_EQ(sim.now(), ms(28));  // 20ms transfers + one 8ms seek
}

TEST(Disk, PerRequestOverheadApplies) {
  Simulation sim;
  DiskParams p{.bytes_per_sec = 100e6, .positioning = 0, .per_request = us(500)};
  Disk disk(sim, p);
  sim.spawn(disk_io(disk, 0, 1'000'000));
  sim.run();
  EXPECT_EQ(sim.now(), ms(10) + us(500));
}

TEST(Disk, ConcurrentRequestsSerialize) {
  Simulation sim;
  DiskParams p{.bytes_per_sec = 100e6, .positioning = 0, .per_request = 0};
  Disk disk(sim, p);
  for (int i = 0; i < 4; ++i) {
    sim.spawn(disk_io(disk, static_cast<uint64_t>(i) * 1'000'000, 1'000'000));
  }
  sim.run();
  EXPECT_EQ(sim.now(), ms(40));
}

Task<void> burn(Cpu& cpu, Duration work) { co_await cpu.execute(work); }

TEST(Cpu, CoresRunConcurrently) {
  Simulation sim;
  Cpu cpu(sim, CpuParams{.cores = 2});
  for (int i = 0; i < 4; ++i) sim.spawn(burn(cpu, ms(10)));
  sim.run();
  EXPECT_EQ(sim.now(), ms(20));  // 4 jobs on 2 cores
}

TEST(Cpu, SingleCoreSerializes) {
  Simulation sim;
  Cpu cpu(sim, CpuParams{.cores = 1});
  for (int i = 0; i < 3; ++i) sim.spawn(burn(cpu, ms(10)));
  sim.run();
  EXPECT_EQ(sim.now(), ms(30));
}

TEST(Cpu, ZeroWorkIsFree) {
  Simulation sim;
  Cpu cpu(sim, CpuParams{.cores = 1});
  sim.spawn(burn(cpu, 0));
  sim.run();
  EXPECT_EQ(sim.now(), 0);
}

}  // namespace
}  // namespace dpnfs::sim
