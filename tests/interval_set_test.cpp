#include <gtest/gtest.h>

#include "util/interval_set.hpp"
#include "util/rng.hpp"

namespace dpnfs::util {
namespace {

using IV = IntervalSet::Interval;

TEST(IntervalSet, EmptySet) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.total_length(), 0u);
  EXPECT_FALSE(s.intersects(0, 100));
  EXPECT_FALSE(s.covers(0, 1));
  EXPECT_TRUE(s.covers(5, 5));  // empty range trivially covered
}

TEST(IntervalSet, AddAndQuery) {
  IntervalSet s;
  s.add(10, 20);
  EXPECT_TRUE(s.covers(10, 20));
  EXPECT_TRUE(s.covers(12, 18));
  EXPECT_FALSE(s.covers(5, 15));
  EXPECT_FALSE(s.covers(15, 25));
  EXPECT_TRUE(s.intersects(5, 15));
  EXPECT_TRUE(s.intersects(19, 30));
  EXPECT_FALSE(s.intersects(20, 30));  // half-open
  EXPECT_FALSE(s.intersects(0, 10));
  EXPECT_EQ(s.total_length(), 10u);
}

TEST(IntervalSet, AddMergesOverlapping) {
  IntervalSet s;
  s.add(10, 20);
  s.add(15, 30);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(10, 30));
}

TEST(IntervalSet, AddMergesAdjacent) {
  IntervalSet s;
  s.add(10, 20);
  s.add(20, 30);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(10, 30));
}

TEST(IntervalSet, AddKeepsDisjointSeparate) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_FALSE(s.covers(10, 40));
  EXPECT_EQ(s.total_length(), 20u);
}

TEST(IntervalSet, AddSpanningMergesAll) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  s.add(50, 60);
  s.add(15, 55);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(10, 60));
}

TEST(IntervalSet, SubtractMiddleSplits) {
  IntervalSet s;
  s.add(10, 40);
  s.subtract(20, 30);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_TRUE(s.covers(10, 20));
  EXPECT_TRUE(s.covers(30, 40));
  EXPECT_FALSE(s.intersects(20, 30));
}

TEST(IntervalSet, SubtractEdges) {
  IntervalSet s;
  s.add(10, 40);
  s.subtract(0, 15);
  s.subtract(35, 50);
  EXPECT_EQ(s.intervals(), (std::vector<IV>{{15, 35}}));
}

TEST(IntervalSet, SubtractEverything) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  s.subtract(0, 100);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, SubtractAcrossMultiple) {
  IntervalSet s;
  s.add(0, 10);
  s.add(20, 30);
  s.add(40, 50);
  s.subtract(5, 45);
  EXPECT_EQ(s.intervals(), (std::vector<IV>{{0, 5}, {45, 50}}));
}

TEST(IntervalSet, IntersectionClipsToRange) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  EXPECT_EQ(s.intersection(15, 35), (std::vector<IV>{{15, 20}, {30, 35}}));
  EXPECT_TRUE(s.intersection(21, 29).empty());
}

TEST(IntervalSet, GapsComplementIntersection) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  EXPECT_EQ(s.gaps(0, 50), (std::vector<IV>{{0, 10}, {20, 30}, {40, 50}}));
  EXPECT_EQ(s.gaps(10, 40), (std::vector<IV>{{20, 30}}));
  EXPECT_TRUE(s.gaps(12, 18).empty());
}

TEST(IntervalSet, EmptyAddIsNoop) {
  IntervalSet s;
  s.add(5, 5);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, BadRangeThrows) {
  IntervalSet s;
  EXPECT_THROW(s.add(10, 5), std::invalid_argument);
  EXPECT_THROW(s.covers(10, 5), std::invalid_argument);
}

// Property: a random sequence of adds/subtracts matches a bitmap oracle.
TEST(IntervalSet, PropertyMatchesBitmapOracle) {
  constexpr uint64_t kUniverse = 256;
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet s;
    std::vector<bool> oracle(kUniverse, false);
    for (int op = 0; op < 60; ++op) {
      uint64_t a = rng.below(kUniverse);
      uint64_t b = rng.below(kUniverse);
      if (a > b) std::swap(a, b);
      if (rng.chance(0.6)) {
        s.add(a, b);
        for (uint64_t i = a; i < b; ++i) oracle[i] = true;
      } else {
        s.subtract(a, b);
        for (uint64_t i = a; i < b; ++i) oracle[i] = false;
      }
    }
    // Compare total length.
    uint64_t oracle_len = 0;
    for (bool bit : oracle) oracle_len += bit ? 1 : 0;
    ASSERT_EQ(s.total_length(), oracle_len);
    // Compare covers/intersects on random probes.
    for (int probe = 0; probe < 40; ++probe) {
      uint64_t a = rng.below(kUniverse);
      uint64_t b = rng.below(kUniverse);
      if (a > b) std::swap(a, b);
      bool all = true, any = false;
      for (uint64_t i = a; i < b; ++i) {
        all = all && oracle[i];
        any = any || oracle[i];
      }
      ASSERT_EQ(s.covers(a, b), all) << "covers(" << a << "," << b << ")";
      ASSERT_EQ(s.intersects(a, b), any) << "intersects(" << a << "," << b << ")";
    }
    // Intervals must be disjoint, sorted, and non-adjacent.
    const auto ivs = s.intervals();
    for (size_t i = 1; i < ivs.size(); ++i) {
      ASSERT_GT(ivs[i].start, ivs[i - 1].end);
    }
  }
}

}  // namespace
}  // namespace dpnfs::util
