// Per-tenant attribution and the flight recorder, end to end: tenant ids
// ride the RPC wire from client config to server-side accounting, per-tenant
// rows sum exactly to the aggregate RPC counters, the tenant-mix workload
// splits clients the same way the tenant round-robin does, and a restart
// fault leaves a bit-reproducible flight dump behind.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "rpc/fabric.hpp"
#include "util/tenant.hpp"
#include "workload/ior.hpp"
#include "workload/oltp.hpp"
#include "workload/tenant_mix.hpp"

namespace dpnfs {
namespace {

void run_tenanted(core::ClusterConfig cfg, std::string* metrics_json = nullptr) {
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 8ull << 20;
  workload::OltpConfig oltp;
  oltp.file_bytes = 8ull << 20;
  oltp.transactions_per_client = 200;
  std::vector<std::unique_ptr<workload::Workload>> children;
  children.push_back(std::make_unique<workload::IorWorkload>(ior));
  children.push_back(std::make_unique<workload::OltpWorkload>(oltp));
  workload::TenantMixWorkload w(std::move(children));
  core::Deployment d(cfg);
  const workload::RunResult r = workload::run_workload(d, w);
  if (metrics_json != nullptr) *metrics_json = r.metrics_json;
  const obs::TenantLedger& ledger = d.tenant_ledger();
  const obs::TenantStats& total = ledger.total();

  // Exactness: no evictions at this cardinality, so per-tenant rows sum
  // to the ledger totals field by field.
  EXPECT_EQ(ledger.tenants_evicted(), 0u);
  obs::TenantStats sum;
  for (const auto& e : ledger.topk().sorted()) sum.merge(e.value);
  EXPECT_EQ(sum.rpcs, total.rpcs);
  EXPECT_EQ(sum.wire_bytes_in, total.wire_bytes_in);
  EXPECT_EQ(sum.wire_bytes_out, total.wire_bytes_out);
  EXPECT_EQ(sum.disk_ns, total.disk_ns);
  EXPECT_EQ(sum.read_bytes, total.read_bytes);
  EXPECT_EQ(sum.write_bytes, total.write_bytes);
  EXPECT_EQ(sum.errors, total.errors);

  // ...and the totals match the aggregate rpc.* counters: the ledger and
  // the per-node metrics are fed from the same server call site, so a
  // request can't be double- or un-attributed.
  uint64_t agg_requests = 0, agg_in = 0, agg_out = 0;
  for (const std::string& node : d.metrics().node_names()) {
    if (const obs::Counter* c = d.metrics().find_counter(node, "rpc", "requests")) {
      agg_requests += c->value();
    }
    if (const obs::Counter* c =
            d.metrics().find_counter(node, "rpc", "wire_bytes_in")) {
      agg_in += c->value();
    }
    if (const obs::Counter* c =
            d.metrics().find_counter(node, "rpc", "wire_bytes_out")) {
      agg_out += c->value();
    }
  }
  EXPECT_EQ(total.rpcs, agg_requests);
  EXPECT_EQ(total.wire_bytes_in, agg_in);
  EXPECT_EQ(total.wire_bytes_out, agg_out);

  // Both real tenants did attributable work.
  for (uint64_t tenant : {1u, 2u}) {
    const auto* e = ledger.topk().find(tenant);
    EXPECT_NE(e, nullptr) << "tenant " << tenant;
    if (e == nullptr) return;
    EXPECT_GT(e->value.rpcs, 0u);
    EXPECT_GT(e->value.wire_bytes_in, 0u);
    EXPECT_GT(e->value.latency_us.count(), 0u);
  }
  // Tenant 1 ran the ingest child, tenant 2 the OLTP child: the ingest
  // tenant only writes, the OLTP tenant reads too.
  EXPECT_GT(ledger.topk().find(1)->value.write_bytes, 0u);
  EXPECT_EQ(ledger.topk().find(1)->value.read_bytes, 0u);
  EXPECT_GT(ledger.topk().find(2)->value.read_bytes, 0u);
}

TEST(TenantLedger, DirectPnfsSumsMatchAggregates) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 3;
  cfg.clients = 4;
  cfg.tenants = 2;
  std::string metrics;
  run_tenanted(cfg, &metrics);
  EXPECT_NE(metrics.find("\"tenants\":"), std::string::npos);
  EXPECT_NE(metrics.find("\"tenant1\""), std::string::npos);
  EXPECT_NE(metrics.find("\"tenant2\""), std::string::npos);
  EXPECT_NE(metrics.find("\"health\":"), std::string::npos);
}

TEST(TenantLedger, TenantRidesProxyHopsOnTwoTier) {
  // On pNFS-2tier every data op proxies through an intermediate NFS server;
  // the tenant must survive the extra hop (server re-stamps the forwarded
  // call from the inbound header's trace context).
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kPnfs2Tier;
  cfg.storage_nodes = 3;
  cfg.clients = 4;
  cfg.tenants = 2;
  run_tenanted(cfg);
}

TEST(TenantLedger, DiskTimeIsAttributed) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 3;
  cfg.clients = 2;
  cfg.tenants = 2;
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 8ull << 20;
  workload::IorWorkload w(ior);
  core::Deployment d(cfg);
  workload::run_workload(d, w);
  const obs::TenantLedger& ledger = d.tenant_ledger();
  for (uint64_t tenant : {1u, 2u}) {
    const auto* e = ledger.topk().find(tenant);
    ASSERT_NE(e, nullptr);
    EXPECT_GT(e->value.disk_ns, 0u) << "tenant " << tenant;
    EXPECT_GT(e->value.write_bytes, 0u) << "tenant " << tenant;
  }
}

TEST(TenantLedger, ZeroTenantsMeansOneNoneRow) {
  // tenants == 0 (the default) leaves every call unstamped: all traffic
  // lands on the reserved "none" row and the wire carries no tenant word.
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 3;
  cfg.clients = 2;
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 4ull << 20;
  workload::IorWorkload w(ior);
  core::Deployment d(cfg);
  workload::run_workload(d, w);
  const obs::TenantLedger& ledger = d.tenant_ledger();
  EXPECT_EQ(ledger.tenants_seen(), 1u);
  const auto* none = ledger.topk().find(0);
  ASSERT_NE(none, nullptr);
  EXPECT_EQ(none->value.rpcs, ledger.total().rpcs);
  EXPECT_EQ(obs::TenantLedger::tenant_name(0), "none");
  EXPECT_EQ(obs::TenantLedger::tenant_name(7), "tenant7");
}

TEST(TenantMixWorkload, ComposesChildren) {
  workload::OltpConfig oltp;
  oltp.transactions_per_client = 100;
  std::vector<std::unique_ptr<workload::Workload>> children;
  children.push_back(
      std::make_unique<workload::IorWorkload>(workload::IorConfig{}));
  children.push_back(std::make_unique<workload::OltpWorkload>(oltp));
  workload::TenantMixWorkload w(std::move(children));
  EXPECT_EQ(w.child_count(), 2u);
  EXPECT_NE(w.name().find("tenant-mix("), std::string::npos);
  // Transactions accrue during the run; composed total starts at the
  // children's sum (zero before any client ran).
  EXPECT_EQ(w.total_transactions(), 0u);
  EXPECT_THROW(workload::TenantMixWorkload({}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Flight recorder under a restart fault
// ---------------------------------------------------------------------------

std::string run_restart_flight(std::string* metrics_json = nullptr) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 3;
  cfg.clients = 3;
  cfg.tenants = 2;
  // Restart-recovery posture (mirrors `simulate --fault-ds-restart`).
  cfg.nfs_client.ds_timeout = sim::ms(250);
  cfg.nfs_client.ds_rpc_retries = 8;
  cfg.nfs_client.slice_retries = 4;
  cfg.nfs_client.breaker_threshold = 4;
  cfg.nfs_client.breaker_reset = sim::ms(500);
  cfg.nfs_client.mds_timeout = sim::ms(500);
  cfg.nfs_client.mds_fallback = false;
  cfg.mds_grace_period = sim::ms(100);
  cfg.faults.crash_service(0, rpc::kNfsPort, sim::ms(300), sim::ms(800));
  core::Deployment d(cfg);
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 16ull << 20;
  workload::IorWorkload w(ior);
  workload::run_workload(d, w);
  if (metrics_json != nullptr) *metrics_json = d.metrics_json();
  return d.flight_json();
}

TEST(FlightRecorder, RestartDumpIsBitReproducible) {
  std::string metrics;
  const std::string first = run_restart_flight(&metrics);
  const std::string second = run_restart_flight();
  EXPECT_EQ(first, second);
  // The dump carries the recovery ladder, not just raw log lines.
  EXPECT_NE(first.find("\"restart\""), std::string::npos);
  EXPECT_NE(first.find("\"events_recorded\""), std::string::npos);
  EXPECT_NE(first.find("\"events_dropped\""), std::string::npos);
  // Health section exists and every node resolved to a named state.
  EXPECT_NE(metrics.find("\"health\":"), std::string::npos);
  EXPECT_NE(metrics.find("\"state\":"), std::string::npos);
}

TEST(FlightRecorder, RingDropsOldestAndCountsThem) {
  obs::FlightRecorder ring(2);
  ring.record(1, "n", "c", "a", "first");
  ring.record(2, "n", "c", "b", "second");
  ring.record(3, "n", "c", "c", "third");
  EXPECT_EQ(ring.events_recorded(), 3u);
  EXPECT_EQ(ring.events_dropped(), 1u);
  ASSERT_EQ(ring.events().size(), 2u);
  EXPECT_EQ(ring.events().front().kind, "b");
  EXPECT_EQ(ring.events().back().seq, 3u);
}

}  // namespace
}  // namespace dpnfs
