// Backchannel / CB_LAYOUTRECALL tests on the full Direct-pNFS deployment:
// layouts are valid until recalled (paper §5); conflicting metadata
// operations recall them, and clients fall back to MDS I/O transparently.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "util/bytes.hpp"

namespace dpnfs::core {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

ClusterConfig small() {
  ClusterConfig cfg;
  cfg.architecture = Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  cfg.stripe_unit = 256 * 1024;
  return cfg;
}

nfs::NfsClient& native(Deployment& d, size_t i) {
  return static_cast<NfsFileSystemClient&>(d.client(i)).native();
}

TEST(LayoutRecall, TruncateByAnotherClientRecallsLayout) {
  Deployment d(small());
  {
    d.simulation().spawn([](Deployment& d) -> Task<void> {
      co_await d.mount_all();
      auto& a = native(d, 0);
      auto& b = native(d, 1);

      auto fa = co_await a.open("/shared", true);
      co_await a.write(fa, 0, Payload::virtual_bytes(4_MiB));
      co_await a.fsync(fa);
      EXPECT_TRUE(a.file_has_layout(fa));

      co_await b.truncate("/shared", 1_MiB);

      // A's layout was recalled; its cached size is still its own view, but
      // the layout is gone and further I/O flows through the MDS.
      EXPECT_FALSE(a.file_has_layout(fa));
      EXPECT_EQ(a.layout_recalls_served(), 1u);
      co_await a.write(fa, 1_MiB, Payload::from_string("after recall"));
      co_await a.fsync(fa);
      co_await a.close(fa);

      // Content written through the MDS fallback is visible to B.
      auto fb = co_await b.open("/shared", false);
      Payload p = co_await b.read(fb, 1_MiB, 12);
      EXPECT_EQ(p, Payload::from_string("after recall"));
      co_await b.close(fb);
    }(d));
    d.simulation().run();
  }
  ASSERT_NE(d.translator(), nullptr);
}

TEST(LayoutRecall, RecallFlushesDirtyDataFirst) {
  Deployment d(small());
  d.simulation().spawn([](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    auto& a = native(d, 0);
    auto& b = native(d, 1);

    auto fa = co_await a.open("/f", true);
    // Leave data dirty in A's cache (smaller than a full wsize chunk so the
    // write-back pipeline hasn't pushed it).
    co_await a.write(fa, 0, Payload::from_string("dirty-but-precious"));

    // B truncating to a LARGER size recalls A's layout; A must flush its
    // dirty bytes through the old layout before dropping it.
    co_await b.truncate("/f", 64);
    EXPECT_FALSE(a.file_has_layout(fa));

    auto fb = co_await b.open("/f", false);
    Payload p = co_await b.read(fb, 0, 18);
    EXPECT_EQ(p, Payload::from_string("dirty-but-precious"));
    co_await b.close(fb);
    co_await a.close(fa);
  }(d));
  d.simulation().run();
}

TEST(LayoutRecall, RemoveRecallsHoldersLayout) {
  Deployment d(small());
  d.simulation().spawn([](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    auto& a = native(d, 0);
    auto& b = native(d, 1);

    auto fa = co_await a.open("/victim", true);
    co_await a.write(fa, 0, Payload::virtual_bytes(1_MiB));
    co_await a.fsync(fa);
    EXPECT_TRUE(a.file_has_layout(fa));

    co_await b.remove("/victim");
    EXPECT_FALSE(a.file_has_layout(fa));
    EXPECT_GE(a.layout_recalls_served(), 1u);
  }(d));
  d.simulation().run();
}

TEST(LayoutRecall, SelfTruncateAlsoRecallsOwnLayout) {
  Deployment d(small());
  d.simulation().spawn([](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    auto& a = native(d, 0);
    auto fa = co_await a.open("/self", true);
    co_await a.write(fa, 0, Payload::virtual_bytes(2_MiB));
    co_await a.fsync(fa);
    EXPECT_TRUE(a.file_has_layout(fa));
    co_await a.truncate("/self", 1_MiB);
    EXPECT_FALSE(a.file_has_layout(fa));
    EXPECT_EQ(a.file_size(fa), 1_MiB);
    co_await a.close(fa);
  }(d));
  d.simulation().run();
}

TEST(LayoutRecall, NoBackchannelMeansNoRecallTraffic) {
  ClusterConfig cfg = small();
  cfg.nfs_client.enable_backchannel = false;
  Deployment d(cfg);
  d.simulation().spawn([](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    auto& a = native(d, 0);
    auto& b = native(d, 1);
    auto fa = co_await a.open("/f", true);
    co_await a.write(fa, 0, Payload::virtual_bytes(1_MiB));
    co_await a.fsync(fa);
    co_await b.truncate("/f", 64);
    // Without a registered backchannel the server has nobody to recall;
    // the truncate still succeeds.
    EXPECT_EQ(a.layout_recalls_served(), 0u);
    co_await a.close(fa);
  }(d));
  d.simulation().run();
}

}  // namespace
}  // namespace dpnfs::core
