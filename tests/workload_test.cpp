// Workload generator tests: request-stream properties and small-scale
// end-to-end runs on the deployments.
#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "workload/atlas.hpp"
#include "workload/btio.hpp"
#include "workload/ior.hpp"
#include "workload/oltp.hpp"
#include "workload/postmark.hpp"
#include "workload/runner.hpp"
#include "workload/sshbuild.hpp"

namespace dpnfs::workload {
namespace {

using namespace dpnfs::util::literals;
using core::Architecture;
using core::ClusterConfig;
using core::Deployment;

ClusterConfig tiny(Architecture arch, uint32_t clients = 2) {
  ClusterConfig cfg;
  cfg.architecture = arch;
  cfg.storage_nodes = 4;
  cfg.clients = clients;
  return cfg;
}

TEST(AtlasDistribution, MatchesPaperCharacterization) {
  // 95% of requests < 275 KB; ~95% of bytes in requests >= 275 KB.
  AtlasConfig cfg;
  AtlasWorkload w(cfg);
  util::Rng rng(123);
  uint64_t small_count = 0, total_count = 0;
  uint64_t large_bytes = 0, total_bytes = 0;
  for (int i = 0; i < 200000; ++i) {
    const uint64_t n = w.draw_request_size(rng);
    ++total_count;
    total_bytes += n;
    if (n < 275 * 1024) {
      ++small_count;
    } else {
      large_bytes += n;
    }
  }
  const double frac_small_requests =
      static_cast<double>(small_count) / static_cast<double>(total_count);
  const double frac_large_bytes =
      static_cast<double>(large_bytes) / static_cast<double>(total_bytes);
  EXPECT_NEAR(frac_small_requests, 0.95, 0.01);
  EXPECT_NEAR(frac_large_bytes, 0.95, 0.02);
}

TEST(IorWorkload_, WriteMovesExactBytes) {
  Deployment d(tiny(Architecture::kDirectPnfs));
  IorConfig cfg;
  cfg.bytes_per_client = 16_MiB;
  IorWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(r.app_bytes, 2 * 16_MiB);
  EXPECT_GT(r.elapsed_seconds, 0.0);
  EXPECT_GT(r.aggregate_mbps(), 1.0);
  // Commit-on-close means everything reached the disks.
  EXPECT_GE(d.disk_write_bytes(), 2 * 16_MiB);
}

TEST(IorWorkload_, ReadAfterWarmupServesFromServerCache) {
  Deployment d(tiny(Architecture::kDirectPnfs));
  IorConfig cfg;
  cfg.write = false;
  cfg.bytes_per_client = 16_MiB;
  IorWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(r.app_bytes, 2 * 16_MiB);
  // Warm server cache: the timed read phase does no disk reads.
  EXPECT_EQ(d.disk_read_bytes(), 0u);
}

TEST(IorWorkload_, SingleFileDisjointRegions) {
  Deployment d(tiny(Architecture::kNativePvfs));
  IorConfig cfg;
  cfg.single_file = true;
  cfg.bytes_per_client = 8_MiB;
  IorWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(r.app_bytes, 2 * 8_MiB);
}

TEST(IorWorkload_, SmallBlocksSameBytes) {
  Deployment d(tiny(Architecture::kPlainNfs));
  IorConfig cfg;
  cfg.bytes_per_client = 4_MiB;
  cfg.block_size = 8 * 1024;
  IorWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(r.app_bytes, 2 * 4_MiB);
}

TEST(AtlasWorkload_, RunsOnDirectPnfs) {
  Deployment d(tiny(Architecture::kDirectPnfs, 1));
  AtlasConfig cfg;
  cfg.bytes_per_client = 8_MiB;
  cfg.file_span = 8_MiB;
  AtlasWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  EXPECT_GE(r.app_bytes, 8_MiB);
  EXPECT_GT(r.elapsed_seconds, 0.0);
}

TEST(BtioWorkload_, CompletesAndVerifies) {
  Deployment d(tiny(Architecture::kDirectPnfs, 2));
  BtioConfig cfg;
  cfg.file_bytes = 20_MiB;
  cfg.time_steps = 20;
  cfg.checkpoint_every = 5;
  cfg.compute_total = sim::sec(10);
  BtioWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  // 2 clients: compute is 10s/2 = 5s minimum.
  EXPECT_GT(r.elapsed_seconds, 5.0);
  // Written 20 MiB plus verification read of 20 MiB.
  EXPECT_GE(r.app_bytes, 40_MiB);
}

TEST(BtioWorkload_, ComputeScalesDownWithClients) {
  auto elapsed = [](uint32_t clients) {
    Deployment d(tiny(Architecture::kNativePvfs, clients));
    BtioConfig cfg;
    cfg.file_bytes = 16_MiB;
    cfg.time_steps = 20;
    cfg.compute_total = sim::sec(40);
    cfg.verify_read = false;
    BtioWorkload w(cfg);
    return run_workload(d, w).elapsed_seconds;
  };
  EXPECT_GT(elapsed(1), elapsed(4));
}

TEST(OltpWorkload_, TransactionsComplete) {
  Deployment d(tiny(Architecture::kDirectPnfs, 2));
  OltpConfig cfg;
  cfg.file_bytes = 32_MiB;
  cfg.transactions_per_client = 50;
  OltpWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(r.transactions, 100u);
  EXPECT_GT(r.tps(), 0.0);
  // Each transaction reads and writes 8 KiB.
  EXPECT_GE(r.app_bytes, 100u * 16 * 1024);
}

TEST(PostmarkWorkload_, TransactionsComplete) {
  Deployment d(tiny(Architecture::kDirectPnfs, 1));
  PostmarkConfig cfg;
  cfg.initial_files = 20;
  cfg.transactions = 60;
  cfg.max_file_bytes = 64 * 1024;
  PostmarkWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(r.transactions, 60u);
  EXPECT_GT(r.tps(), 0.0);
}

TEST(PostmarkWorkload_, RunsOnNativePvfs) {
  Deployment d(tiny(Architecture::kNativePvfs, 1));
  PostmarkConfig cfg;
  cfg.initial_files = 15;
  cfg.transactions = 40;
  cfg.max_file_bytes = 32 * 1024;
  PostmarkWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(r.transactions, 40u);
}

TEST(SshBuildWorkload_, PhasesRecorded) {
  Deployment d(tiny(Architecture::kDirectPnfs, 1));
  SshBuildConfig cfg;
  cfg.source_files = 25;
  cfg.header_files = 10;
  cfg.configure_probes = 30;
  cfg.configure_scripts = 10;
  SshBuildWorkload w(cfg);
  (void)run_workload(d, w);
  EXPECT_GT(w.uncompress_seconds(), 0.0);
  EXPECT_GT(w.configure_seconds(), 0.0);
  EXPECT_GT(w.compile_seconds(), 0.0);
}

TEST(Runner, DeterministicAcrossRuns) {
  auto once = [] {
    Deployment d(tiny(Architecture::kPnfs2Tier, 2));
    IorConfig cfg;
    cfg.bytes_per_client = 8_MiB;
    IorWorkload w(cfg);
    return run_workload(d, w).elapsed_seconds;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

}  // namespace
}  // namespace dpnfs::workload
