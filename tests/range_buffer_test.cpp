#include <gtest/gtest.h>

#include "util/range_buffer.hpp"
#include "util/rng.hpp"

namespace dpnfs::util {
namespace {

using rpc::Payload;

TEST(RangeBuffer, EmptyReadsZeros) {
  RangeBuffer b;
  Payload p = b.load(10, 4);
  ASSERT_TRUE(p.is_inline());
  for (auto byte : p.data()) EXPECT_EQ(byte, std::byte{0});
}

TEST(RangeBuffer, StoreLoadExact) {
  RangeBuffer b;
  b.store(5, Payload::from_string("abc"));
  EXPECT_EQ(b.load(5, 3), Payload::from_string("abc"));
  // Surrounding zeros.
  Payload p = b.load(4, 5);
  EXPECT_EQ(p.data()[0], std::byte{0});
  EXPECT_EQ(p.data()[1], static_cast<std::byte>('a'));
  EXPECT_EQ(p.data()[4], std::byte{0});
}

TEST(RangeBuffer, OverwriteSplitsExtents) {
  RangeBuffer b;
  b.store(0, Payload::from_string("AAAAAAAAAA"));
  b.store(3, Payload::from_string("bbb"));
  EXPECT_EQ(b.load(0, 10), Payload::from_string("AAAbbbAAAA"));
  b.store(0, Payload::from_string("cc"));
  EXPECT_EQ(b.load(0, 10), Payload::from_string("ccAbbbAAAA"));
}

TEST(RangeBuffer, VirtualTaintsAndHeals) {
  RangeBuffer b;
  b.store(0, Payload::from_string("0123456789"));
  b.store(4, Payload::virtual_bytes(2));
  EXPECT_TRUE(b.tainted(0, 10));
  EXPECT_FALSE(b.tainted(0, 4));
  EXPECT_FALSE(b.load(0, 10).is_inline());
  EXPECT_EQ(b.load(0, 4), Payload::from_string("0123"));
  EXPECT_EQ(b.load(6, 4), Payload::from_string("6789"));
  b.store(4, Payload::from_string("45"));
  EXPECT_EQ(b.load(0, 10), Payload::from_string("0123456789"));
}

TEST(RangeBuffer, DropForgetsContent) {
  RangeBuffer b;
  b.store(0, Payload::from_string("xxxxxxxxxx"));
  b.drop(2, 6);
  Payload p = b.load(0, 10);
  EXPECT_EQ(p.data()[1], static_cast<std::byte>('x'));
  EXPECT_EQ(p.data()[2], std::byte{0});
  EXPECT_EQ(p.data()[5], std::byte{0});
  EXPECT_EQ(p.data()[6], static_cast<std::byte>('x'));
}

TEST(RangeBuffer, DropClearsTaint) {
  RangeBuffer b;
  b.store(0, Payload::virtual_bytes(8));
  EXPECT_TRUE(b.tainted(0, 8));
  b.drop(0, 8);
  EXPECT_FALSE(b.tainted(0, 8));
  EXPECT_TRUE(b.load(0, 8).is_inline());  // zeros again
}

TEST(RangeBuffer, ZeroLengthOps) {
  RangeBuffer b;
  b.store(5, Payload{});
  EXPECT_EQ(b.load(5, 0).size(), 0u);
  b.drop(5, 5);
}

// Property: random store/drop sequences match a byte-array oracle.
TEST(RangeBuffer, PropertyMatchesOracle) {
  constexpr size_t kUniverse = 512;
  util::Rng rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    RangeBuffer b;
    std::vector<uint8_t> oracle(kUniverse, 0);
    for (int op = 0; op < 80; ++op) {
      uint64_t lo = rng.below(kUniverse);
      uint64_t hi = rng.below(kUniverse);
      if (lo > hi) std::swap(lo, hi);
      if (hi == lo) continue;
      if (rng.chance(0.7)) {
        std::vector<std::byte> data(hi - lo);
        for (auto& byte : data) {
          const auto v = static_cast<uint8_t>(rng.below(256));
          byte = static_cast<std::byte>(v);
        }
        for (uint64_t i = lo; i < hi; ++i) {
          oracle[i] = static_cast<uint8_t>(data[i - lo]);
        }
        b.store(lo, Payload::inline_bytes(std::move(data)));
      } else {
        b.drop(lo, hi);
        for (uint64_t i = lo; i < hi; ++i) oracle[i] = 0;
      }
    }
    const Payload all = b.load(0, kUniverse);
    ASSERT_TRUE(all.is_inline());
    for (size_t i = 0; i < kUniverse; ++i) {
      ASSERT_EQ(static_cast<uint8_t>(all.data()[i]), oracle[i])
          << "trial " << trial << " byte " << i;
    }
  }
}

}  // namespace
}  // namespace dpnfs::util
