// Access-transparency / security tests: one credential covers the control
// path (MDS) and the data path (data servers) because both speak NFSv4 —
// the property Direct-pNFS inherits and FS-specific storage protocols lose.
#include <gtest/gtest.h>

#include <memory>

#include "lfs/object_store.hpp"
#include "nfs/client.hpp"
#include "nfs/local_backend.hpp"
#include "nfs/server.hpp"
#include "sim/network.hpp"

namespace dpnfs::nfs {
namespace {

using rpc::Payload;
using sim::Task;

struct Rig {
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  sim::Node& server_node = net.add_node(sim::NodeParams{
      .name = "server",
      .nic = sim::NicParams{},
      .disk = sim::DiskParams{},
      .cpu = sim::CpuParams{}});
  sim::Node& client_node = net.add_node(sim::NodeParams{
      .name = "client",
      .nic = sim::NicParams{},
      .disk = std::nullopt,
      .cpu = sim::CpuParams{}});
  lfs::ObjectStore store{server_node};
  LocalBackend backend{store};
  std::unique_ptr<NfsServer> server;

  explicit Rig(const std::string& required_suffix) {
    ServerConfig cfg;
    cfg.required_principal_suffix = required_suffix;
    server = std::make_unique<NfsServer>(fabric, server_node, rpc::kNfsPort,
                                         backend, nullptr, cfg);
    server->start();
  }

  void run(Task<void> t) {
    sim.spawn(std::move(t));
    sim.run();
  }
};

TEST(Security, AuthorizedPrincipalWorks) {
  Rig r("@PHYSICS.EDU");
  r.run([](Rig& r) -> Task<void> {
    NfsClient alice(r.fabric, r.client_node, r.server->address(),
                    "alice@PHYSICS.EDU", ClientConfig{.pnfs_enabled = false});
    co_await alice.mount();
    auto f = co_await alice.open("/data", true);
    co_await alice.write(f, 0, Payload::from_string("restricted"));
    co_await alice.close(f);
  }(r));
}

TEST(Security, UnauthorizedPrincipalRejectedEverywhere) {
  Rig r("@PHYSICS.EDU");
  r.run([](Rig& r) -> Task<void> {
    NfsClient mallory(r.fabric, r.client_node, r.server->address(),
                      "mallory@EVIL.ORG", ClientConfig{.pnfs_enabled = false});
    bool denied = false;
    try {
      co_await mallory.mount();  // even EXCHANGE_ID is refused
    } catch (const NfsError& e) {
      denied = (e.status() == Status::kPerm);
    }
    EXPECT_TRUE(denied);
  }(r));
}

TEST(Security, SuffixMatchingIsExact) {
  Rig r("@PHYSICS.EDU");
  r.run([](Rig& r) -> Task<void> {
    // A principal that merely *contains* the suffix elsewhere must fail.
    NfsClient tricky(r.fabric, r.client_node, r.server->address(),
                     "x@PHYSICS.EDU.evil.org",
                     ClientConfig{.pnfs_enabled = false});
    bool denied = false;
    try {
      co_await tricky.mount();
    } catch (const NfsError& e) {
      denied = (e.status() == Status::kPerm);
    }
    EXPECT_TRUE(denied);
  }(r));
}

TEST(Security, OpenPolicyAdmitsAnyone) {
  Rig r("");  // no requirement
  r.run([](Rig& r) -> Task<void> {
    NfsClient anyone(r.fabric, r.client_node, r.server->address(),
                     "whoever@ANYWHERE", ClientConfig{.pnfs_enabled = false});
    co_await anyone.mount();
    const Fattr root = co_await anyone.stat("/");
    EXPECT_EQ(root.type, FileType::kDirectory);
  }(r));
}

}  // namespace
}  // namespace dpnfs::nfs
