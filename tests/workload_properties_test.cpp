// Deeper workload-generator properties: exact tiling, cross-architecture
// content agreement, and determinism guarantees the benches rely on.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "util/bytes.hpp"
#include "workload/atlas.hpp"
#include "workload/btio.hpp"
#include "workload/postmark.hpp"
#include "workload/runner.hpp"

namespace dpnfs::workload {
namespace {

using namespace dpnfs::util::literals;
using core::Architecture;
using core::ClusterConfig;
using core::Deployment;

ClusterConfig tiny(Architecture arch, uint32_t clients) {
  ClusterConfig cfg;
  cfg.architecture = arch;
  cfg.storage_nodes = 4;
  cfg.clients = clients;
  return cfg;
}

TEST(AtlasProperties, WritesTileTheFileExactlyOnce) {
  // The digitization replay must write each byte of the output exactly
  // once: afterwards the file size equals bytes_per_client and the disks
  // absorbed exactly that much (no overlap-inflation).
  Deployment d(tiny(Architecture::kDirectPnfs, 1));
  AtlasConfig cfg;
  cfg.bytes_per_client = 24_MiB;
  cfg.file_span = 24_MiB;
  AtlasWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(r.app_bytes, 24_MiB);

  bool checked = false;
  d.simulation().spawn([](Deployment& d, bool& checked) -> sim::Task<void> {
    const uint64_t size = co_await d.client(0).stat_size("/atlas/f0");
    EXPECT_EQ(size, 24_MiB);
    checked = true;
  }(d, checked));
  d.simulation().run();
  EXPECT_TRUE(checked);
  // Exactly the unique bytes reached the disks (one commit, no rewrite).
  EXPECT_EQ(d.disk_write_bytes(), 24_MiB);
}

TEST(AtlasProperties, IssueOrderIsShuffledButDeterministic) {
  AtlasConfig cfg;
  AtlasWorkload w(cfg);
  util::Rng a(1), b(1), c(2);
  // Same seed, same stream; different seed, different stream.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(w.draw_request_size(a), w.draw_request_size(b));
  }
  int diffs = 0;
  util::Rng a2(1);
  for (int i = 0; i < 100; ++i) {
    if (w.draw_request_size(a2) != w.draw_request_size(c)) ++diffs;
  }
  EXPECT_GT(diffs, 50);
}

TEST(BtioProperties, CheckpointFileIsCompleteForAwkwardClientCounts) {
  // 9 clients do not divide the checkpoint evenly; the last rank must
  // absorb the remainder so verification sees a complete file.
  Deployment d(tiny(Architecture::kDirectPnfs, 3));
  BtioConfig cfg;
  cfg.file_bytes = 10'000'000;  // not divisible by 3
  cfg.time_steps = 10;
  cfg.checkpoint_every = 5;
  cfg.compute_total = sim::sec(1);
  BtioWorkload w(cfg);
  const RunResult r = run_workload(d, w);  // throws on a short file
  EXPECT_GT(r.elapsed_seconds, 0.0);

  bool checked = false;
  d.simulation().spawn([](Deployment& d, bool& checked) -> sim::Task<void> {
    EXPECT_EQ(co_await d.client(0).stat_size("/btio/out"), 10'000'000u);
    checked = true;
  }(d, checked));
  d.simulation().run();
  EXPECT_TRUE(checked);
}

TEST(PostmarkProperties, FilePoolStaysConsistent) {
  Deployment d(tiny(Architecture::kDirectPnfs, 1));
  PostmarkConfig cfg;
  cfg.initial_files = 30;
  cfg.transactions = 200;
  cfg.max_file_bytes = 32 * 1024;
  PostmarkWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(r.transactions, 200u);

  // Every file the instance believes exists must be openable, and the
  // directories must contain only those files.
  bool checked = false;
  d.simulation().spawn([](Deployment& d, bool& checked) -> sim::Task<void> {
    uint64_t found = 0;
    for (int dir = 0; dir < 10; ++dir) {
      auto names = co_await d.client(0).list("/pm0/d" + std::to_string(dir));
      for (const auto& name : names) {
        const uint64_t size = co_await d.client(0).stat_size(
            "/pm0/d" + std::to_string(dir) + "/" + name);
        EXPECT_GT(size, 0u);
        ++found;
      }
    }
    EXPECT_GT(found, 0u);
    checked = true;
  }(d, checked));
  d.simulation().run();
  EXPECT_TRUE(checked);
}

TEST(CrossArchitecture, SameWorkloadSameResultingBytes) {
  // The same ATLAS run on two architectures must produce files of identical
  // size (the access path must not change WHAT is stored).
  auto file_size = [](Architecture arch) {
    Deployment d(tiny(arch, 2));
    AtlasConfig cfg;
    cfg.bytes_per_client = 8_MiB;
    cfg.file_span = 8_MiB;
    AtlasWorkload w(cfg);
    (void)run_workload(d, w);
    uint64_t size = 0;
    d.simulation().spawn([](Deployment& d, uint64_t& size) -> sim::Task<void> {
      size = co_await d.client(1).stat_size("/atlas/f1");
    }(d, size));
    d.simulation().run();
    return size;
  };
  const uint64_t direct = file_size(Architecture::kDirectPnfs);
  const uint64_t pvfs = file_size(Architecture::kNativePvfs);
  const uint64_t two_tier = file_size(Architecture::kPnfs2Tier);
  EXPECT_EQ(direct, 8_MiB);
  EXPECT_EQ(pvfs, direct);
  EXPECT_EQ(two_tier, direct);
}

}  // namespace
}  // namespace dpnfs::workload
