// Deeper workload-generator properties: exact tiling, cross-architecture
// content agreement, and determinism guarantees the benches rely on.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "util/bytes.hpp"
#include "workload/atlas.hpp"
#include "workload/btio.hpp"
#include "workload/oltp.hpp"
#include "workload/openloop.hpp"
#include "workload/postmark.hpp"
#include "workload/strided.hpp"
#include "workload/runner.hpp"

namespace dpnfs::workload {
namespace {

using namespace dpnfs::util::literals;
using core::Architecture;
using core::ClusterConfig;
using core::Deployment;

ClusterConfig tiny(Architecture arch, uint32_t clients) {
  ClusterConfig cfg;
  cfg.architecture = arch;
  cfg.storage_nodes = 4;
  cfg.clients = clients;
  return cfg;
}

TEST(AtlasProperties, WritesTileTheFileExactlyOnce) {
  // The digitization replay must write each byte of the output exactly
  // once: afterwards the file size equals bytes_per_client and the disks
  // absorbed exactly that much (no overlap-inflation).
  Deployment d(tiny(Architecture::kDirectPnfs, 1));
  AtlasConfig cfg;
  cfg.bytes_per_client = 24_MiB;
  cfg.file_span = 24_MiB;
  AtlasWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(r.app_bytes, 24_MiB);

  bool checked = false;
  d.simulation().spawn([](Deployment& d, bool& checked) -> sim::Task<void> {
    const uint64_t size = co_await d.client(0).stat_size("/atlas/f0");
    EXPECT_EQ(size, 24_MiB);
    checked = true;
  }(d, checked));
  d.simulation().run();
  EXPECT_TRUE(checked);
  // Exactly the unique bytes reached the disks (one commit, no rewrite).
  EXPECT_EQ(d.disk_write_bytes(), 24_MiB);
}

TEST(AtlasProperties, IssueOrderIsShuffledButDeterministic) {
  AtlasConfig cfg;
  AtlasWorkload w(cfg);
  util::Rng a(1), b(1), c(2);
  // Same seed, same stream; different seed, different stream.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(w.draw_request_size(a), w.draw_request_size(b));
  }
  int diffs = 0;
  util::Rng a2(1);
  for (int i = 0; i < 100; ++i) {
    if (w.draw_request_size(a2) != w.draw_request_size(c)) ++diffs;
  }
  EXPECT_GT(diffs, 50);
}

TEST(BtioProperties, CheckpointFileIsCompleteForAwkwardClientCounts) {
  // 9 clients do not divide the checkpoint evenly; the last rank must
  // absorb the remainder so verification sees a complete file.
  Deployment d(tiny(Architecture::kDirectPnfs, 3));
  BtioConfig cfg;
  cfg.file_bytes = 10'000'000;  // not divisible by 3
  cfg.time_steps = 10;
  cfg.checkpoint_every = 5;
  cfg.compute_total = sim::sec(1);
  BtioWorkload w(cfg);
  const RunResult r = run_workload(d, w);  // throws on a short file
  EXPECT_GT(r.elapsed_seconds, 0.0);

  bool checked = false;
  d.simulation().spawn([](Deployment& d, bool& checked) -> sim::Task<void> {
    EXPECT_EQ(co_await d.client(0).stat_size("/btio/out"), 10'000'000u);
    checked = true;
  }(d, checked));
  d.simulation().run();
  EXPECT_TRUE(checked);
}

TEST(StridedProperties, RecordsTileTheFileDenselyAndDeterministically) {
  // The strided checkpoint interleaves records round-robin; across all
  // clients and checkpoints every file byte is written exactly once, so
  // the final size and the disk traffic both equal file_bytes().
  StridedConfig cfg;
  cfg.record_bytes = 8192;
  cfg.records_per_checkpoint = 16;
  cfg.checkpoints = 3;
  auto run_once = [&cfg] {
    Deployment d(tiny(Architecture::kDirectPnfs, 3));
    StridedWorkload w(cfg);
    const RunResult r = run_workload(d, w);  // verify_read throws on holes
    uint64_t size = 0;
    d.simulation().spawn([](Deployment& d, uint64_t& size) -> sim::Task<void> {
      size = co_await d.client(0).stat_size("/strided/out");
    }(d, size));
    d.simulation().run();
    EXPECT_EQ(size, cfg.file_bytes(3));
    // app_bytes counts the writes plus the full verify readback.
    EXPECT_EQ(r.app_bytes, 2 * cfg.file_bytes(3));
    EXPECT_EQ(d.disk_write_bytes(), cfg.file_bytes(3));
    return std::make_pair(r.elapsed_seconds, d.disk_write_bytes());
  };
  // No RNG anywhere: two runs are bit-identical in time and bytes.
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(OltpProperties, UpdateOnlyModeIsSeedDeterministic) {
  // Update-only OLTP batches random page writes per transaction.  The
  // application byte count is exact, and the same seed reproduces the
  // whole run bit-for-bit (same simulated duration, same disk traffic).
  OltpConfig cfg;
  cfg.file_bytes = 4_MiB;
  cfg.transactions_per_client = 25;
  cfg.update_only = true;
  cfg.updates_per_txn = 8;
  cfg.seed = 42;
  auto run_once = [&cfg] {
    Deployment d(tiny(Architecture::kDirectPnfs, 2));
    OltpWorkload w(cfg);
    const RunResult r = run_workload(d, w);
    EXPECT_EQ(r.transactions, 2u * 25u);
    EXPECT_EQ(r.app_bytes, 2ull * 25u * 8u * cfg.io_size);
    return std::make_pair(r.elapsed_seconds, d.disk_write_bytes());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);

  // A different seed lands the updates on different pages, which changes
  // at least the timing of the run.
  cfg.seed = 43;
  const auto c = run_once();
  EXPECT_NE(a.first, c.first);
}

TEST(PostmarkProperties, FilePoolStaysConsistent) {
  Deployment d(tiny(Architecture::kDirectPnfs, 1));
  PostmarkConfig cfg;
  cfg.initial_files = 30;
  cfg.transactions = 200;
  cfg.max_file_bytes = 32 * 1024;
  PostmarkWorkload w(cfg);
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(r.transactions, 200u);

  // Every file the instance believes exists must be openable, and the
  // directories must contain only those files.
  bool checked = false;
  d.simulation().spawn([](Deployment& d, bool& checked) -> sim::Task<void> {
    uint64_t found = 0;
    for (int dir = 0; dir < 10; ++dir) {
      auto names = co_await d.client(0).list("/pm0/d" + std::to_string(dir));
      for (const auto& name : names) {
        const uint64_t size = co_await d.client(0).stat_size(
            "/pm0/d" + std::to_string(dir) + "/" + name);
        EXPECT_GT(size, 0u);
        ++found;
      }
    }
    EXPECT_GT(found, 0u);
    checked = true;
  }(d, checked));
  d.simulation().run();
  EXPECT_TRUE(checked);
}

TEST(CrossArchitecture, SameWorkloadSameResultingBytes) {
  // The same ATLAS run on two architectures must produce files of identical
  // size (the access path must not change WHAT is stored).
  auto file_size = [](Architecture arch) {
    Deployment d(tiny(arch, 2));
    AtlasConfig cfg;
    cfg.bytes_per_client = 8_MiB;
    cfg.file_span = 8_MiB;
    AtlasWorkload w(cfg);
    (void)run_workload(d, w);
    uint64_t size = 0;
    d.simulation().spawn([](Deployment& d, uint64_t& size) -> sim::Task<void> {
      size = co_await d.client(1).stat_size("/atlas/f1");
    }(d, size));
    d.simulation().run();
    return size;
  };
  const uint64_t direct = file_size(Architecture::kDirectPnfs);
  const uint64_t pvfs = file_size(Architecture::kNativePvfs);
  const uint64_t two_tier = file_size(Architecture::kPnfs2Tier);
  EXPECT_EQ(direct, 8_MiB);
  EXPECT_EQ(pvfs, direct);
  EXPECT_EQ(two_tier, direct);
}

// --- Open-loop arrival schedule properties ---------------------------------

TEST(OpenLoopProperties, SameSeedBitIdenticalScheduleAndTenants) {
  OpenLoopConfig cfg;
  cfg.seed = 0xFEEDFACE;
  cfg.rate_per_sec = 5000;
  cfg.duration = sim::sec(2);
  cfg.tenant_weights = {4, 3, 2, 1};
  cfg.diurnal_peak_ratio = 2.0;

  // The schedule is pure Rng arithmetic over the config: it must be
  // bit-identical across runs (and across architectures/topologies — it
  // never consults a deployment).
  const auto a = generate_arrivals(cfg);
  const auto b = generate_arrivals(cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at) << "arrival " << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << "arrival " << i;
    EXPECT_EQ(a[i].session_seed, b[i].session_seed) << "arrival " << i;
  }
  // Sorted by time; tenant labels restricted to the configured mix.
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].at, a[i].at);
  }
  for (const auto& arr : a) {
    EXPECT_GE(arr.tenant, 1u);
    EXPECT_LE(arr.tenant, 4u);
  }

  // A different seed moves the schedule.
  cfg.seed ^= 1;
  const auto c = generate_arrivals(cfg);
  ASSERT_FALSE(c.empty());
  EXPECT_TRUE(a.size() != c.size() || a[0].at != c[0].at ||
              a[0].session_seed != c[0].session_seed);
}

TEST(OpenLoopProperties, PoissonRealizesConfiguredRateAndMix) {
  OpenLoopConfig cfg;
  cfg.rate_per_sec = 10000;
  cfg.duration = sim::sec(2);
  cfg.tenant_weights = {4, 3, 2, 1};

  const auto arrivals = generate_arrivals(cfg);
  const double expected = cfg.rate_per_sec * sim::to_seconds(cfg.duration);
  EXPECT_NEAR(static_cast<double>(arrivals.size()), expected,
              0.05 * expected);

  double share[5] = {};
  for (const auto& a : arrivals) share[a.tenant] += 1;
  for (int t = 1; t <= 4; ++t) {
    const double want = cfg.tenant_weights[t - 1] / 10.0;
    EXPECT_NEAR(share[t] / arrivals.size(), want, 0.02) << "tenant " << t;
  }
}

TEST(OpenLoopProperties, DiurnalRampConcentratesArrivalsMidWindow) {
  OpenLoopConfig cfg;
  cfg.rate_per_sec = 5000;
  cfg.duration = sim::sec(3);
  cfg.diurnal_peak_ratio = 3.0;

  const auto arrivals = generate_arrivals(cfg);
  const sim::Time third = cfg.duration / 3;
  size_t early = 0, mid = 0;
  for (const auto& a : arrivals) {
    if (a.at < third) ++early;
    if (a.at >= third && a.at < 2 * third) ++mid;
  }
  // The middle third straddles the peak of the triangular tide; it must see
  // substantially more arrivals than the ramp-up third.
  EXPECT_GT(mid, early * 3 / 2);
}

TEST(OpenLoopProperties, BoundedParetoRecoversTailIndex) {
  OpenLoopConfig cfg;
  cfg.process = ArrivalProcess::kBoundedPareto;
  cfg.pareto_alpha = 1.5;
  cfg.pareto_lo = 1.0;
  cfg.pareto_hi = 1e6;  // wide support: truncation bias is negligible
  cfg.rate_per_sec = 10000;
  cfg.duration = sim::sec(2);

  const auto arrivals = generate_arrivals(cfg);
  ASSERT_GT(arrivals.size(), 5000u);

  std::vector<double> gaps;
  gaps.reserve(arrivals.size());
  sim::Time prev = 0;
  for (const auto& a : arrivals) {
    if (a.at > prev) gaps.push_back(static_cast<double>(a.at - prev));
    prev = a.at;
  }
  std::sort(gaps.begin(), gaps.end(), std::greater<>());

  // Hill estimator over the top-k order statistics: alpha_hat =
  // k / sum(ln(x_i / x_k)).  Scale-invariant, so the rescaling of draws to
  // the configured mean rate does not move it.
  const size_t k = 500;
  ASSERT_GT(gaps.size(), k);
  double acc = 0;
  for (size_t i = 0; i < k; ++i) acc += std::log(gaps[i] / gaps[k]);
  const double alpha_hat = static_cast<double>(k) / acc;
  EXPECT_NEAR(alpha_hat, cfg.pareto_alpha, 0.25);
}

TEST(OpenLoopProperties, HeavyTailedScheduleIsAlsoSeedDeterministic) {
  OpenLoopConfig cfg;
  cfg.process = ArrivalProcess::kBoundedPareto;
  cfg.rate_per_sec = 2000;
  cfg.duration = sim::sec(1);
  const auto a = generate_arrivals(cfg);
  const auto b = generate_arrivals(cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].session_seed, b[i].session_seed);
  }
}

}  // namespace
}  // namespace dpnfs::workload
