// Layout translator unit tests with a scripted PFS layout provider, plus
// the synthetic (placement-oblivious) layout source of the 2-/3-tier
// deployments.
#include <gtest/gtest.h>

#include <map>

#include "core/translator.hpp"
#include "sim/simulation.hpp"

namespace dpnfs::core {
namespace {

using nfs::Status;
using sim::Task;

class FakeProvider final : public PfsLayoutProvider {
 public:
  bool describe(nfs::FileHandle fh, PfsLayoutDescription* out) override {
    auto it = layouts_.find(fh.id);
    if (it == layouts_.end()) return false;
    *out = it->second;
    return true;
  }
  Task<uint64_t> on_layout_commit(nfs::FileHandle fh, uint64_t new_size) override {
    committed_[fh.id] = new_size;
    co_return 1;
  }

  std::map<uint64_t, PfsLayoutDescription> layouts_;
  std::map<uint64_t, uint64_t> committed_;
};

std::vector<nfs::DeviceEntry> make_devices(uint32_t n) {
  std::vector<nfs::DeviceEntry> out;
  for (uint32_t i = 0; i < n; ++i) {
    out.push_back(nfs::DeviceEntry{nfs::DeviceId{i}, 100 + i, 2049});
  }
  return out;
}

/// Runs a coroutine returning Status synchronously (no time passes).
Status run_status(sim::Simulation& sim, Task<Status> task) {
  Status result = Status::kIo;
  sim.spawn([](Task<Status> t, Status& out) -> Task<void> {
    out = co_await t;
  }(std::move(task), result));
  sim.run();
  return result;
}

TEST(LayoutTranslator, TranslatesPlacementsToDevicesAndFhs) {
  sim::Simulation sim;
  FakeProvider provider;
  PfsLayoutDescription desc;
  desc.aggregation = nfs::AggregationType::kRoundRobin;
  desc.stripe_unit = 1 << 20;
  // File striped over storage nodes 2, 0, 1 (rotated start), with object
  // ids 500, 501, 502.
  desc.placements = {{2, 500}, {0, 501}, {1, 502}};
  provider.layouts_[7] = desc;

  LayoutTranslator tr(provider, make_devices(3));
  nfs::FileLayout layout;
  ASSERT_EQ(run_status(sim, tr.layout_get(nfs::FileHandle{7},
                                          nfs::LayoutIoMode::kReadWrite,
                                          &layout)),
            Status::kOk);
  ASSERT_EQ(layout.devices.size(), 3u);
  EXPECT_EQ(layout.devices[0].id, 2u);  // preserves the PFS stripe order
  EXPECT_EQ(layout.devices[1].id, 0u);
  EXPECT_EQ(layout.devices[2].id, 1u);
  // The data-server filehandle IS the storage object id.
  EXPECT_EQ(layout.fhs[0].id, 500u);
  EXPECT_EQ(layout.fhs[1].id, 501u);
  EXPECT_EQ(layout.fhs[2].id, 502u);
  EXPECT_EQ(layout.stripe_unit, 1u << 20);
  EXPECT_TRUE(layout.valid());
  EXPECT_EQ(tr.layouts_granted(), 1u);
}

TEST(LayoutTranslator, UnknownFileIsLayoutUnavailable) {
  sim::Simulation sim;
  FakeProvider provider;
  LayoutTranslator tr(provider, make_devices(3));
  nfs::FileLayout layout;
  EXPECT_EQ(run_status(sim, tr.layout_get(nfs::FileHandle{99},
                                          nfs::LayoutIoMode::kRead, &layout)),
            Status::kLayoutUnavailable);
  EXPECT_EQ(tr.layouts_granted(), 0u);
}

TEST(LayoutTranslator, DegenerateDescriptionsRejected) {
  sim::Simulation sim;
  FakeProvider provider;
  provider.layouts_[1] = PfsLayoutDescription{};  // empty placements
  PfsLayoutDescription bad_index;
  bad_index.stripe_unit = 4096;
  bad_index.placements = {{9, 1}};  // storage index out of range
  provider.layouts_[2] = bad_index;

  LayoutTranslator tr(provider, make_devices(3));
  nfs::FileLayout layout;
  EXPECT_EQ(run_status(sim, tr.layout_get(nfs::FileHandle{1},
                                          nfs::LayoutIoMode::kRead, &layout)),
            Status::kLayoutUnavailable);
  EXPECT_EQ(run_status(sim, tr.layout_get(nfs::FileHandle{2},
                                          nfs::LayoutIoMode::kRead, &layout)),
            Status::kLayoutUnavailable);
}

TEST(LayoutTranslator, CommitForwardsSizeChanges) {
  sim::Simulation sim;
  FakeProvider provider;
  LayoutTranslator tr(provider, make_devices(2));
  uint64_t post_change = 99;
  EXPECT_EQ(run_status(sim, tr.layout_commit(nfs::FileHandle{5}, 12345, true,
                                             &post_change)),
            Status::kOk);
  EXPECT_EQ(provider.committed_.at(5), 12345u);
  EXPECT_EQ(post_change, 1u);  // the provider's reported change attribute
  // size_changed=false must not call the provider.
  EXPECT_EQ(run_status(sim, tr.layout_commit(nfs::FileHandle{6}, 777, false,
                                             &post_change)),
            Status::kOk);
  EXPECT_FALSE(provider.committed_.contains(6));
}

TEST(LayoutTranslator, DeviceListMatchesConstruction) {
  sim::Simulation sim;
  FakeProvider provider;
  LayoutTranslator tr(provider, make_devices(4));
  std::vector<nfs::DeviceEntry> devices;
  Status st = Status::kIo;
  sim.spawn([](LayoutTranslator& tr, std::vector<nfs::DeviceEntry>& devices,
               Status& st) -> Task<void> {
    st = co_await tr.get_device_list(&devices);
  }(tr, devices, st));
  sim.run();
  EXPECT_EQ(st, Status::kOk);
  ASSERT_EQ(devices.size(), 4u);
  EXPECT_EQ(devices[3].node_id, 103u);
}

TEST(SyntheticLayoutSource, ObliviousLayoutSharesTheMdsFilehandle) {
  sim::Simulation sim;
  SyntheticLayoutSource src(make_devices(6), 2 << 20);
  nfs::FileLayout layout;
  ASSERT_EQ(run_status(sim, src.layout_get(nfs::FileHandle{42},
                                           nfs::LayoutIoMode::kReadWrite,
                                           &layout)),
            Status::kOk);
  ASSERT_EQ(layout.fhs.size(), 6u);
  for (const auto& fh : layout.fhs) EXPECT_EQ(fh.id, 42u);
  EXPECT_EQ(layout.aggregation, nfs::AggregationType::kRoundRobin);
  EXPECT_EQ(layout.stripe_unit, 2u << 20);
}

}  // namespace
}  // namespace dpnfs::core
