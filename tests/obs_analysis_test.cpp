// Critical-path latency attribution, Chrome trace export, tracer indexing,
// and utilization sampling.  Runs under the `faults` label so the asan
// preset's fault matrix covers the analyzer against retry-shaped traces.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/adapters.hpp"
#include "core/deployment.hpp"
#include "rpc/fabric.hpp"
#include "util/obs.hpp"
#include "util/obs_analysis.hpp"
#include "workload/ior.hpp"
#include "workload/runner.hpp"

namespace dpnfs {
namespace {

using obs::Span;
using obs::SpanKind;
using sim::Task;

Span make_span(uint64_t trace, uint64_t id, uint64_t parent, SpanKind kind,
               const char* name, const char* node, int64_t start,
               int64_t end) {
  Span s;
  s.trace_id = trace;
  s.span_id = id;
  s.parent_span_id = parent;
  s.kind = kind;
  s.name = name;
  s.node = node;
  s.start = start;
  s.end = end;
  return s;
}

// ---------------------------------------------------------------------------
// analyze_trace: exact attribution on hand-built traces
// ---------------------------------------------------------------------------

TEST(CriticalPath, TwoHopExactAttribution) {
  // client [0,1000] --wire--> server picked up at 200 (enqueued at 100),
  // done at 800; the store burns [300,600] of which 250 ns touched the disk.
  Span client = make_span(1, 1, 0, SpanKind::kClientCall, "nfs/38", "client0",
                          0, 1000);
  client.send_wait = 50;
  Span server = make_span(1, 2, 1, SpanKind::kServerExec, "nfs/38", "storage0",
                          200, 800);
  server.queue_wait = 100;
  Span store = make_span(1, 3, 2, SpanKind::kInternal, "store/write",
                         "storage0", 300, 600);
  store.disk = 250;

  const obs::TraceBreakdown b = obs::analyze_trace({store, server, client});
  EXPECT_TRUE(b.well_formed);
  EXPECT_EQ(b.root_op, "nfs/38");
  EXPECT_EQ(b.hops, 1u);
  EXPECT_EQ(b.phases.client_queue, 50);
  EXPECT_EQ(b.phases.request_wire, 50);
  EXPECT_EQ(b.phases.server_queue, 100);
  EXPECT_EQ(b.phases.service_cpu, 350);
  EXPECT_EQ(b.phases.disk, 250);
  EXPECT_EQ(b.phases.reply_wire, 200);
  EXPECT_EQ(b.phases.other, 0);
  EXPECT_EQ(b.phases.total(), b.total());  // exactness invariant
}

TEST(CriticalPath, NestedProxyHopSumsExactly) {
  // The 2-tier shape: client -> DS, whose server span issues a nested
  // client hop to the storage daemon.
  Span c1 = make_span(7, 1, 0, SpanKind::kClientCall, "nfs/38", "client0",
                      0, 2000);
  c1.send_wait = 50;
  Span s1 = make_span(7, 2, 1, SpanKind::kServerExec, "nfs/38", "ds0",
                      100, 1800);
  s1.queue_wait = 50;
  Span c2 = make_span(7, 3, 2, SpanKind::kClientCall, "pvfs.io/4", "ds0",
                      300, 1500);
  c2.send_wait = 25;
  Span s2 = make_span(7, 4, 3, SpanKind::kServerExec, "pvfs.io/4", "storage2",
                      500, 1300);
  s2.queue_wait = 80;
  Span st = make_span(7, 5, 4, SpanKind::kInternal, "store/write", "storage2",
                      600, 1100);
  st.disk = 400;

  const obs::TraceBreakdown b = obs::analyze_trace({c1, s1, c2, s2, st});
  EXPECT_TRUE(b.well_formed);
  EXPECT_EQ(b.hops, 2u);
  EXPECT_EQ(b.phases.total(), 2000);
  // Both hops' wire/queue shares stack: the proxy adds its own send wait,
  // queue residency, and wire legs on top of the first hop's.
  EXPECT_EQ(b.phases.client_queue, 50 + 25);
  EXPECT_EQ(b.phases.server_queue, 50 + 80);
  EXPECT_EQ(b.phases.disk, 400);
}

TEST(CriticalPath, OverlappingSiblingsNeverDoubleCount) {
  // Two server-exec children with overlapping extended intervals: the
  // earlier-starting child claims the overlap; the total still matches.
  Span c = make_span(3, 1, 0, SpanKind::kClientCall, "nfs/38", "client0",
                     0, 1000);
  Span a = make_span(3, 2, 1, SpanKind::kServerExec, "nfs/38", "s0", 100, 600);
  Span bspan =
      make_span(3, 3, 1, SpanKind::kServerExec, "nfs/38", "s1", 400, 900);
  const obs::TraceBreakdown b = obs::analyze_trace({c, a, bspan});
  EXPECT_TRUE(b.well_formed);
  EXPECT_EQ(b.phases.total(), 1000);
  EXPECT_EQ(b.phases.service_cpu, 800);  // [100,600) + [600,900), no overlap
}

TEST(CriticalPath, TimedOutAttemptIsUnattributable) {
  // A client span with no server-exec child (the reply never came): its
  // exclusive time is "other", not wire.
  Span root = make_span(9, 1, 0, SpanKind::kClientCall, "nfs/38 timeout",
                        "client0", 0, 500);
  const obs::TraceBreakdown b = obs::analyze_trace({root});
  EXPECT_TRUE(b.well_formed);
  EXPECT_EQ(b.phases.other, 500);
  EXPECT_EQ(b.phases.request_wire, 0);
}

TEST(CriticalPath, ParentCycleIsNotWellFormed) {
  Span a = make_span(5, 1, 2, SpanKind::kClientCall, "x", "n", 0, 100);
  Span b = make_span(5, 2, 1, SpanKind::kServerExec, "x", "n", 0, 100);
  const obs::TraceBreakdown out = obs::analyze_trace({a, b});
  EXPECT_FALSE(out.well_formed);
}

// ---------------------------------------------------------------------------
// Chrome export
// ---------------------------------------------------------------------------

TEST(TraceExporter, EmitsChromeTraceEventShape) {
  obs::Tracer tracer;
  Span client = make_span(1, 1, 0, SpanKind::kClientCall, "nfs/38", "client0",
                          1000, 5000);
  Span server = make_span(1, 2, 1, SpanKind::kServerExec, "nfs/38", "storage0",
                          2000, 4000);
  tracer.record(std::move(client));
  tracer.record(std::move(server));

  obs::TimeSeries ts;
  ts.add("storage0", "nic_tx_util", 1500, 0.5);

  const std::string json =
      obs::TraceExporter::to_chrome_json(tracer, "Direct-pNFS", &ts);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"architecture\": \"Direct-pNFS\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Cross-node parent edge => one flow pair.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  // Counter track from the sampled series.
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"nic_tx_util\""), std::string::npos);
  // Span annotations ride in args.
  EXPECT_NE(json.find("\"queue_wait_ns\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer: per-trace index and hop-map eviction
// ---------------------------------------------------------------------------

TEST(Tracer, TraceSpansUsesIndex) {
  obs::Tracer tracer;
  for (uint64_t t = 1; t <= 50; ++t) {
    tracer.record(make_span(t, t * 10, 0, SpanKind::kClientCall, "nfs/38",
                            "c", 0, 100));
  }
  const auto spans = tracer.trace_spans(17);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].span_id, 170u);
  EXPECT_TRUE(tracer.trace_spans(999).empty());
}

TEST(Tracer, HopMapEvictionKeepsAccountingExact) {
  obs::Tracer tracer;
  tracer.set_hop_trace_capacity(4);
  // 10 traces, 2 hops each; the map holds only the 4 newest.
  for (uint64_t t = 1; t <= 10; ++t) {
    for (int h = 0; h < 2; ++h) {
      tracer.record(make_span(t, t * 100 + h, 0, SpanKind::kClientCall,
                              "nfs/38", "c", 0, 100));
    }
  }
  EXPECT_EQ(tracer.hop_traces_seen(), 10u);
  EXPECT_EQ(tracer.hop_traces_evicted(), 6u);
  EXPECT_DOUBLE_EQ(tracer.mean_hops_per_trace(), 2.0);
  EXPECT_EQ(tracer.max_hops_per_trace(), 2u);
  EXPECT_NE(tracer.to_json().find("\"hop_traces_evicted\": 6"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Deployment-level: fault-injected traces stay sane; sampler; acceptance
// ---------------------------------------------------------------------------

core::ClusterConfig small_cluster(core::Architecture arch) {
  core::ClusterConfig cfg;
  cfg.architecture = arch;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  cfg.trace_span_capacity = 65536;
  return cfg;
}

double run_ior_write_share(core::Architecture arch, obs::BreakdownReport* out) {
  core::ClusterConfig cfg = small_cluster(arch);
  core::Deployment d(cfg);
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 8'000'000;
  workload::IorWorkload w(ior);
  run_workload(d, w);
  obs::BreakdownReport rep = obs::analyze_all(d.tracer());
  if (out != nullptr) *out = rep;
  return rep.wire_queue_share();
}

/// Mean wire+queue nanoseconds per write-back dispatch (traces rooted at
/// the per-DS scheduler's wb.sched spans).  The reroute claim is about
/// absolute time the extra hop adds on the data path: shares of total are
/// confounded by where each architecture's *service* time goes (the 2-tier
/// kernel-client traversal is service, COMMIT pipelining shifts every
/// architecture's aggregate), but the re-route's wire and queue residency
/// per request survives any denominator.
double write_wire_queue_per_trace(const obs::BreakdownReport& rep) {
  obs::TimeNs wq = 0;
  uint64_t count = 0;
  for (const auto& [op, ob] : rep.per_op) {
    if (op.rfind("wb.sched/", 0) == 0) {
      wq += ob.phases.wire_and_queue();
      count += ob.count;
    }
  }
  return count > 0 ? static_cast<double>(wq) / static_cast<double>(count)
                   : 0.0;
}

TEST(Breakdown, TwoTierRerouteInflatesWireQueueShare) {
  // The acceptance pin: the 2-tier proxy's extra data-server hop must cost
  // strictly more wire+queue time per write-back dispatch than Direct-pNFS
  // on the same workload — that is the Figure 6 gap, attributed.
  obs::BreakdownReport direct, two_tier;
  run_ior_write_share(core::Architecture::kDirectPnfs, &direct);
  run_ior_write_share(core::Architecture::kPnfs2Tier, &two_tier);
  const double direct_share = write_wire_queue_per_trace(direct);
  const double two_tier_share = write_wire_queue_per_trace(two_tier);
  EXPECT_GT(direct_share, 0.0);
  EXPECT_GT(two_tier_share, direct_share);
  EXPECT_GT(direct.traces_analyzed, 0u);
  EXPECT_GT(two_tier.traces_analyzed, 0u);
  // The extra hop is also directly visible in the hop counts.
  uint64_t direct_hops = 0, two_tier_hops = 0;
  for (const auto& [op, ob] : direct.per_op) direct_hops += ob.hops;
  for (const auto& [op, ob] : two_tier.per_op) two_tier_hops += ob.hops;
  EXPECT_GT(static_cast<double>(two_tier_hops) / two_tier.traces_analyzed,
            static_cast<double>(direct_hops) / direct.traces_analyzed);
  EXPECT_NE(two_tier.to_json("pNFS-2tier").find("\"wire_queue_share\""),
            std::string::npos);
}

TEST(Breakdown, FaultInjectedTracesStayMonotoneAndAcyclic) {
  core::ClusterConfig cfg = small_cluster(core::Architecture::kDirectPnfs);
  cfg.nfs_client.ds_timeout = sim::ms(20);
  cfg.nfs_client.ds_rpc_retries = 1;
  cfg.nfs_client.slice_retries = 1;
  cfg.nfs_client.breaker_threshold = 2;
  cfg.nfs_client.breaker_reset = sim::sec(60);
  cfg.faults.crash_service(1, rpc::kNfsPort, sim::ms(50), sim::sec(2));

  core::Deployment d(cfg);
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 8'000'000;
  workload::IorWorkload w(ior);
  run_workload(d, w);

  const auto& spans = d.tracer().spans();
  ASSERT_FALSE(spans.empty());
  std::map<uint64_t, std::map<uint64_t, uint64_t>> parent_of;
  for (const Span& s : spans) {
    EXPECT_GE(s.end, s.start) << "span " << s.span_id << " runs backwards";
    EXPECT_GE(s.start, 0) << "span " << s.span_id << " starts before t=0";
    parent_of[s.trace_id][s.span_id] = s.parent_span_id;
  }
  for (const auto& [trace, members] : parent_of) {
    for (const auto& [id, parent] : members) {
      std::unordered_set<uint64_t> seen;
      uint64_t cur = id;
      while (members.count(cur) > 0) {
        ASSERT_TRUE(seen.insert(cur).second)
            << "parent cycle in trace " << trace << " through span " << cur;
        cur = members.at(cur);
      }
    }
  }
  // Retries happened (the crash guarantees it) and the analyzer still
  // holds the exactness invariant on every well-formed trace.
  uint64_t checked = 0;
  std::map<uint64_t, std::vector<Span>> by_trace;
  for (const Span& s : spans) by_trace[s.trace_id].push_back(s);
  for (const auto& [trace, ss] : by_trace) {
    const obs::TraceBreakdown b = obs::analyze_trace(ss);
    if (b.trace_id == 0 || !b.well_formed) continue;
    EXPECT_EQ(b.phases.total(), b.total()) << "trace " << trace;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(Sampling, SamplerRecordsUtilizationSeries) {
  core::ClusterConfig cfg = small_cluster(core::Architecture::kDirectPnfs);
  cfg.sample_interval = sim::ms(5);
  core::Deployment d(cfg);
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 8'000'000;
  workload::IorWorkload w(ior);
  const workload::RunResult r = run_workload(d, w);

  EXPECT_FALSE(d.samples().empty());
  bool saw_nic = false, saw_disk = false;
  for (const auto& [node, by_name] : d.samples().series()) {
    saw_nic = saw_nic || by_name.count("nic_tx_util") > 0;
    saw_disk = saw_disk || by_name.count("disk_util") > 0;
    for (const auto& [name, points] : by_name) {
      for (size_t i = 1; i < points.size(); ++i) {
        ASSERT_GT(points[i].t, points[i - 1].t) << node << "/" << name;
      }
    }
  }
  EXPECT_TRUE(saw_nic);
  EXPECT_TRUE(saw_disk);
  EXPECT_NE(r.metrics_json.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(r.latency_breakdown_json().find("\"phases_ns\""),
            std::string::npos);
}

TEST(Sampling, DisabledIntervalRecordsNothing) {
  core::ClusterConfig cfg = small_cluster(core::Architecture::kDirectPnfs);
  cfg.sample_interval = 0;
  core::Deployment d(cfg);
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 2'000'000;
  workload::IorWorkload w(ior);
  const workload::RunResult r = run_workload(d, w);
  EXPECT_TRUE(d.samples().empty());
  EXPECT_EQ(r.metrics_json.find("\"timeseries\""), std::string::npos);
}

}  // namespace
}  // namespace dpnfs
