#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rpc/message.hpp"
#include "rpc/xdr.hpp"
#include "util/rng.hpp"

namespace dpnfs::rpc {
namespace {

TEST(Xdr, U32RoundTripAndBigEndian) {
  XdrEncoder enc;
  enc.put_u32(0x01020304u);
  auto buf = std::move(enc).take();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], std::byte{0x01});
  EXPECT_EQ(buf[3], std::byte{0x04});
  XdrDecoder dec(buf);
  EXPECT_EQ(dec.get_u32(), 0x01020304u);
  EXPECT_TRUE(dec.done());
}

TEST(Xdr, U64RoundTrip) {
  XdrEncoder enc;
  enc.put_u64(0xDEADBEEFCAFEF00DULL);
  auto buf = std::move(enc).take();
  ASSERT_EQ(buf.size(), 8u);
  XdrDecoder dec(buf);
  EXPECT_EQ(dec.get_u64(), 0xDEADBEEFCAFEF00DULL);
}

TEST(Xdr, SignedRoundTrip) {
  XdrEncoder enc;
  enc.put_i32(-5);
  enc.put_i64(-123456789012345LL);
  auto buf = std::move(enc).take();
  XdrDecoder dec(buf);
  EXPECT_EQ(dec.get_i32(), -5);
  EXPECT_EQ(dec.get_i64(), -123456789012345LL);
}

TEST(Xdr, BoolRoundTripAndValidation) {
  XdrEncoder enc;
  enc.put_bool(true);
  enc.put_bool(false);
  enc.put_u32(7);  // invalid bool
  auto buf = std::move(enc).take();
  XdrDecoder dec(buf);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
  EXPECT_THROW(dec.get_bool(), XdrError);
}

TEST(Xdr, StringPadsToFourBytes) {
  XdrEncoder enc;
  enc.put_string("abcde");  // 4 len + 5 data + 3 pad
  auto buf = std::move(enc).take();
  EXPECT_EQ(buf.size(), 12u);
  XdrDecoder dec(buf);
  EXPECT_EQ(dec.get_string(), "abcde");
  EXPECT_TRUE(dec.done());
}

TEST(Xdr, EmptyString) {
  XdrEncoder enc;
  enc.put_string("");
  auto buf = std::move(enc).take();
  EXPECT_EQ(buf.size(), 4u);
  XdrDecoder dec(buf);
  EXPECT_EQ(dec.get_string(), "");
}

TEST(Xdr, OpaqueVarRoundTrip) {
  std::vector<std::byte> data{std::byte{1}, std::byte{2}, std::byte{3}};
  XdrEncoder enc;
  enc.put_opaque_var(data);
  auto buf = std::move(enc).take();
  EXPECT_EQ(buf.size(), 8u);  // 4 len + 3 data + 1 pad
  XdrDecoder dec(buf);
  EXPECT_EQ(dec.get_opaque_var(), data);
}

TEST(Xdr, UnderflowThrows) {
  XdrEncoder enc;
  enc.put_u32(1);
  auto buf = std::move(enc).take();
  XdrDecoder dec(buf);
  dec.get_u32();
  EXPECT_THROW(dec.get_u32(), XdrError);
}

TEST(Xdr, TruncatedOpaqueThrows) {
  XdrEncoder enc;
  enc.put_u32(1000);  // claims 1000 bytes, provides none
  auto buf = std::move(enc).take();
  XdrDecoder dec(buf);
  EXPECT_THROW(dec.get_opaque_var(), XdrError);
}

TEST(Xdr, NonzeroPaddingRejected) {
  XdrEncoder enc;
  enc.put_u32(1);                       // opaque length 1
  enc.put_u32(0xAABBCCDDu);             // data byte + nonzero "padding"
  auto buf = std::move(enc).take();
  XdrDecoder dec(buf);
  EXPECT_THROW(dec.get_opaque_var(), XdrError);
}

TEST(Xdr, InlinePayloadRoundTrip) {
  Payload p = Payload::from_string("hello world");
  XdrEncoder enc;
  enc.put_payload(p);
  EXPECT_EQ(enc.wire_size(), enc.encoded_size());
  auto buf = std::move(enc).take();
  XdrDecoder dec(buf);
  Payload q = dec.get_payload();
  EXPECT_EQ(p, q);
}

TEST(Xdr, VirtualPayloadCountsWireBytes) {
  Payload p = Payload::virtual_bytes(2 * 1024 * 1024);
  XdrEncoder enc;
  enc.put_payload(p);
  EXPECT_LT(enc.encoded_size(), 32u);  // tiny materialized part
  EXPECT_EQ(enc.wire_size(), enc.encoded_size() + 2 * 1024 * 1024);
  auto buf = std::move(enc).take();
  XdrDecoder dec(buf);
  Payload q = dec.get_payload();
  EXPECT_FALSE(q.is_inline());
  EXPECT_EQ(q.size(), 2u * 1024 * 1024);
}

TEST(Payload, SliceInline) {
  Payload p = Payload::from_string("abcdefgh");
  Payload s = p.slice(2, 3);
  EXPECT_EQ(s, Payload::from_string("cde"));
  EXPECT_THROW(p.slice(5, 10), std::out_of_range);
}

TEST(Payload, SliceVirtual) {
  Payload p = Payload::virtual_bytes(100);
  Payload s = p.slice(10, 50);
  EXPECT_FALSE(s.is_inline());
  EXPECT_EQ(s.size(), 50u);
}

TEST(Payload, AppendInlinePreservesContent) {
  Payload p = Payload::from_string("abc");
  p.append(Payload::from_string("def"));
  EXPECT_EQ(p, Payload::from_string("abcdef"));
}

TEST(Payload, AppendVirtualPoisonsContent) {
  Payload p = Payload::from_string("abc");
  p.append(Payload::virtual_bytes(7));
  EXPECT_FALSE(p.is_inline());
  EXPECT_EQ(p.size(), 10u);
}

TEST(Message, CallHeaderRoundTrip) {
  CallHeader h{42, 100003, 4, 7, 0xdeadbeefull, 0xfeedfaceull, kFlagSampled,
               "alice@EXAMPLE"};
  XdrEncoder enc;
  h.encode(enc);
  auto buf = std::move(enc).take();
  XdrDecoder dec(buf);
  CallHeader g = CallHeader::decode(dec);
  EXPECT_EQ(g.xid, 42u);
  EXPECT_EQ(g.prog, 100003u);
  EXPECT_EQ(g.vers, 4u);
  EXPECT_EQ(g.proc, 7u);
  EXPECT_EQ(g.trace_id, 0xdeadbeefull);
  EXPECT_EQ(g.span_id, 0xfeedfaceull);
  EXPECT_EQ(g.flags, kFlagSampled);
  EXPECT_EQ(g.principal, "alice@EXAMPLE");
}

TEST(Message, ReplyHeaderRoundTrip) {
  ReplyHeader h{9, ReplyStatus::kGarbageArgs};
  XdrEncoder enc;
  h.encode(enc);
  auto buf = std::move(enc).take();
  XdrDecoder dec(buf);
  ReplyHeader g = ReplyHeader::decode(dec);
  EXPECT_EQ(g.xid, 9u);
  EXPECT_EQ(g.status, ReplyStatus::kGarbageArgs);
}

// Property test: random sequences of primitives round-trip exactly.
TEST(Xdr, PropertyRandomSequencesRoundTrip) {
  util::Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<int> kinds;
    std::vector<uint64_t> u64s;
    std::vector<uint32_t> u32s;
    std::vector<std::string> strs;
    XdrEncoder enc;
    const int n = static_cast<int>(rng.range(1, 20));
    for (int i = 0; i < n; ++i) {
      switch (rng.below(3)) {
        case 0: {
          const auto v = static_cast<uint32_t>(rng.next());
          kinds.push_back(0);
          u32s.push_back(v);
          enc.put_u32(v);
          break;
        }
        case 1: {
          const uint64_t v = rng.next();
          kinds.push_back(1);
          u64s.push_back(v);
          enc.put_u64(v);
          break;
        }
        default: {
          std::string s;
          const auto len = rng.below(40);
          for (uint64_t j = 0; j < len; ++j) {
            s.push_back(static_cast<char>('a' + rng.below(26)));
          }
          kinds.push_back(2);
          strs.push_back(s);
          enc.put_string(s);
          break;
        }
      }
    }
    auto buf = std::move(enc).take();
    XdrDecoder dec(buf);
    size_t i32 = 0, i64 = 0, is = 0;
    for (int kind : kinds) {
      switch (kind) {
        case 0: ASSERT_EQ(dec.get_u32(), u32s[i32++]); break;
        case 1: ASSERT_EQ(dec.get_u64(), u64s[i64++]); break;
        default: ASSERT_EQ(dec.get_string(), strs[is++]); break;
      }
    }
    ASSERT_TRUE(dec.done());
  }
}

// --- Zero-copy regression pins ---------------------------------------------
// The fragment redesign makes single-fragment access, slicing, and appending
// copy-free; data() materializes a gather buffer only for multi-fragment
// payloads.  These tests pin the copy counts so a regression (say, a slice
// that quietly re-buffers) fails loudly instead of showing up as a perf
// cliff at a thousand clients.

TEST(PayloadCopies, SingleFragmentDataIsZeroCopy) {
  Payload p = Payload::from_string("hello zero copy");
  Payload::reset_copy_stats();
  auto view = p.data();
  EXPECT_EQ(view.size(), p.size());
  EXPECT_EQ(Payload::copy_stats().gathers, 0u);
  EXPECT_EQ(Payload::copy_stats().gathered_bytes, 0u);
  // Same storage, not a copy: repeated calls return the same address.
  EXPECT_EQ(view.data(), p.data().data());
}

TEST(PayloadCopies, SliceOfInlineIsZeroCopy) {
  std::vector<std::byte> bytes(4096);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::byte>(i & 0xFF);
  }
  Payload p = Payload::inline_bytes(std::move(bytes));
  const std::byte* base = p.data().data();

  Payload::reset_copy_stats();
  Payload s = p.slice(128, 1024);
  ASSERT_EQ(s.size(), 1024u);
  ASSERT_EQ(s.fragment_count(), 1u);
  // The slice views the parent's buffer at an offset — no bytes moved.
  EXPECT_EQ(s.data().data(), base + 128);
  EXPECT_EQ(Payload::copy_stats().gathers, 0u);
  EXPECT_EQ(Payload::copy_stats().gathered_bytes, 0u);
}

TEST(PayloadCopies, AppendSplicesWithoutCopying) {
  Payload a = Payload::from_string("abcd");
  Payload b = Payload::from_string("efgh");
  Payload::reset_copy_stats();
  a.append(std::move(b));
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a.fragment_count(), 2u);
  EXPECT_EQ(Payload::copy_stats().gathers, 0u);
}

TEST(PayloadCopies, MultiFragmentGatherIsCountedExactlyOnce) {
  Payload a = Payload::from_string("abcd");
  a.append(Payload::from_string("efgh"));
  ASSERT_EQ(a.fragment_count(), 2u);

  Payload::reset_copy_stats();
  auto view = a.data();  // must gather: fragments are not contiguous
  EXPECT_EQ(Payload::copy_stats().gathers, 1u);
  EXPECT_EQ(Payload::copy_stats().gathered_bytes, 8u);
  EXPECT_EQ(a, Payload::from_string("abcdefgh"));

  // The gather collapses the payload to one fragment; further access is
  // copy-free.
  Payload::reset_copy_stats();
  auto again = a.data();
  EXPECT_EQ(again.data(), view.data());
  EXPECT_EQ(Payload::copy_stats().gathers, 0u);
}

TEST(PayloadCopies, EqualityComparesViewsWithoutGathering) {
  Payload a = Payload::from_string("abcd");
  a.append(Payload::from_string("efgh"));
  Payload b = Payload::from_string("abcdefgh");
  Payload::reset_copy_stats();
  EXPECT_EQ(a, b);
  EXPECT_EQ(Payload::copy_stats().gathers, 0u);
}

}  // namespace
}  // namespace dpnfs::rpc
