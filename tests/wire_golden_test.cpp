// Golden wire-format tests: exact byte sequences for representative
// messages.  These freeze the on-the-wire protocol — any codec change that
// alters serialization (and would silently break mixed-version clusters in
// a real deployment) fails here first.
#include <gtest/gtest.h>

#include <string>

#include "nfs/ops.hpp"
#include "rpc/message.hpp"

namespace dpnfs {
namespace {

std::string hex(const std::vector<std::byte>& buf) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(buf.size() * 2);
  for (std::byte b : buf) {
    out.push_back(digits[static_cast<uint8_t>(b) >> 4]);
    out.push_back(digits[static_cast<uint8_t>(b) & 0xF]);
  }
  return out;
}

TEST(WireGolden, CallHeader) {
  rpc::XdrEncoder enc;
  rpc::CallHeader{0x2A, 100003, 4, 1, 7, 9, 0, "ab"}.encode(enc);
  // xid | prog | vers | proc | trace | span | flags | strlen | "ab" + 2 pad
  EXPECT_EQ(hex(std::move(enc).take()),
            "0000002a"           // xid 42
            "000186a3"           // program 100003
            "00000004"           // version 4
            "00000001"           // procedure COMPOUND
            "0000000000000007"   // trace id 7
            "0000000000000009"   // span id 9
            "00000000"           // flags (unsampled)
            "00000002"           // principal length
            "61620000");         // "ab" + XDR padding
}

TEST(WireGolden, CallHeaderSampledBit) {
  rpc::XdrEncoder enc;
  rpc::CallHeader{0x2A, 100003, 4, 1, 7, 9, rpc::kFlagSampled, "ab"}
      .encode(enc);
  // The head-sampling verdict is bit 0 of the flags word: this is how a
  // trace's "keep span detail" decision crosses the wire to other nodes.
  EXPECT_EQ(hex(std::move(enc).take()),
            "0000002a"           // xid 42
            "000186a3"           // program 100003
            "00000004"           // version 4
            "00000001"           // procedure COMPOUND
            "0000000000000007"   // trace id 7
            "0000000000000009"   // span id 9
            "00000001"           // flags: kFlagSampled
            "00000002"           // principal length
            "61620000");         // "ab" + XDR padding
}

TEST(WireGolden, CallHeaderTenantBit) {
  rpc::XdrEncoder enc;
  rpc::CallHeader h{0x2A, 100003, 4, 1, 7, 9, rpc::kFlagSampled, "ab"};
  h.tenant_id = 0x11;
  h.encode(enc);
  // A nonzero tenant sets bit 1 of the flags word and appends the tenant u32
  // between flags and principal; zero-tenant headers (the two pins above)
  // stay byte-identical to the legacy layout.
  const std::vector<std::byte> wire = std::move(enc).take();
  EXPECT_EQ(hex(wire),
            "0000002a"           // xid 42
            "000186a3"           // program 100003
            "00000004"           // version 4
            "00000001"           // procedure COMPOUND
            "0000000000000007"   // trace id 7
            "0000000000000009"   // span id 9
            "00000003"           // flags: kFlagSampled | kFlagHasTenant
            "00000011"           // tenant id 17
            "00000002"           // principal length
            "61620000");         // "ab" + XDR padding
  rpc::XdrDecoder dec(wire);
  const rpc::CallHeader back = rpc::CallHeader::decode(dec);
  EXPECT_TRUE(dec.done());
  EXPECT_EQ(back.tenant_id, 0x11u);
  EXPECT_EQ(back.principal, "ab");
  EXPECT_NE(back.flags & rpc::kFlagSampled, 0u);
}

TEST(WireGolden, SequencePutFhReadCompound) {
  nfs::CompoundBuilder b;
  b.add(nfs::OpCode::kSequence, nfs::SequenceArgs{nfs::SessionId{1}, 0});
  b.add(nfs::OpCode::kPutFh, nfs::PutFhArgs{nfs::FileHandle{0xBEEF}});
  b.add(nfs::OpCode::kRead, nfs::ReadArgs{nfs::Stateid{7}, 0x1000, 0x2000});
  rpc::XdrEncoder enc = std::move(b).finish();
  EXPECT_EQ(hex(std::move(enc).take()),
            "00000003"          // 3 ops
            "00000035"          // SEQUENCE (53)
            "0000000000000001"  // session id 1
            "00000000"          // slot 0
            "00000016"          // PUTFH (22)
            "000000000000beef"  // filehandle
            "00000019"          // READ (25)
            "0000000000000007"  // stateid 7
            "0000000000001000"  // offset
            "00002000");        // count
}

TEST(WireGolden, SequencePutFhReadvCompound) {
  // Two or more regions switch the op to READV (70, above the RFC range);
  // the 1-element case stays byte-identical to the classic READ pin above.
  nfs::ReadArgs readv{nfs::Stateid{7}, {{0x1000, 0x800}, {0x5000, 0x800}}};
  EXPECT_EQ(readv.opcode(), nfs::OpCode::kReadv);
  nfs::CompoundBuilder b;
  b.add(nfs::OpCode::kSequence, nfs::SequenceArgs{nfs::SessionId{1}, 0});
  b.add(nfs::OpCode::kPutFh, nfs::PutFhArgs{nfs::FileHandle{0xBEEF}});
  b.add(readv.opcode(), readv);
  rpc::XdrEncoder enc = std::move(b).finish();
  EXPECT_EQ(hex(std::move(enc).take()),
            "00000003"          // 3 ops
            "00000035"          // SEQUENCE (53)
            "0000000000000001"  // session id 1
            "00000000"          // slot 0
            "00000016"          // PUTFH (22)
            "000000000000beef"  // filehandle
            "00000046"          // READV (70)
            "0000000000000007"  // stateid 7
            "00000002"          // 2 regions
            "0000000000001000"  // region 0 offset
            "00000800"          // region 0 count
            "0000000000005000"  // region 1 offset
            "00000800");        // region 1 count
}

TEST(WireGolden, WritevArgsRoundTrip) {
  std::vector<std::byte> bytes(12);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::byte>(i);
  }
  nfs::WriteArgs w{nfs::Stateid{7},
                   {{0x1000, 8}, {0x3000, 4}},
                   nfs::StableHow::kUnstable,
                   rpc::Payload::inline_bytes(std::move(bytes))};
  EXPECT_EQ(w.opcode(), nfs::OpCode::kWritev);
  rpc::XdrEncoder enc;
  w.encode(enc);
  const std::vector<std::byte> wire = std::move(enc).take();
  EXPECT_EQ(hex(wire),
            "0000000000000007"  // stateid 7
            "00000000"          // stable = UNSTABLE4 (covers every region)
            "00000002"          // 2 regions
            "0000000000001000"  // region 0 offset
            "00000008"          // region 0 count
            "0000000000003000"  // region 1 offset
            "00000004"          // region 1 count
            "00000001"          // payload: inline discriminant
            "0000000c"          // 12 bytes — regions' data concatenated
            "000102030405060708090a0b");
  rpc::XdrDecoder dec(wire);
  const nfs::WriteArgs back = nfs::WriteArgs::decode_vectored(dec);
  EXPECT_TRUE(dec.done());
  EXPECT_EQ(back.regions.size(), 2u);
  EXPECT_EQ(back.regions[0].offset, 0x1000u);
  EXPECT_EQ(back.regions[0].count, 8u);
  EXPECT_EQ(back.regions[1].offset, 0x3000u);
  EXPECT_EQ(back.regions[1].count, 4u);
  EXPECT_EQ(back.total_count(), back.data.size());
}

TEST(WireGolden, SingleRangeWriteArgsKeepLegacyLayout) {
  // The 1-element vectored WriteArgs must emit the pre-LISTIO layout
  // byte-for-byte (offset before stable_how, no region list): old and new
  // nodes interoperate on single-range WRITEs.
  nfs::WriteArgs w{nfs::Stateid{7}, 0x1000, nfs::StableHow::kFileSync,
                   rpc::Payload::from_string("hi")};
  EXPECT_EQ(w.opcode(), nfs::OpCode::kWrite);
  rpc::XdrEncoder enc;
  w.encode(enc);
  const std::vector<std::byte> wire = std::move(enc).take();
  EXPECT_EQ(hex(wire),
            "0000000000000007"  // stateid 7
            "0000000000001000"  // offset
            "00000002"          // stable = FILE_SYNC4
            "00000001"          // payload: inline discriminant
            "00000002"          // length 2
            "68690000");        // "hi" + padding
  rpc::XdrDecoder dec(wire);
  const nfs::WriteArgs back = nfs::WriteArgs::decode(dec);
  EXPECT_TRUE(dec.done());
  EXPECT_EQ(back.regions.size(), 1u);
  EXPECT_EQ(back.regions[0].offset, 0x1000u);
  EXPECT_EQ(back.regions[0].count, 2u);
}

TEST(WireGolden, ReadvResEncoding) {
  std::vector<std::byte> bytes(8);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::byte>(i);
  }
  nfs::ReadvRes res;
  res.eof = true;
  res.lengths = {5, 3};
  res.data = rpc::Payload::inline_bytes(std::move(bytes));
  rpc::XdrEncoder enc;
  res.encode(enc);
  const std::vector<std::byte> wire = std::move(enc).take();
  EXPECT_EQ(hex(wire),
            "00000001"    // eof (any region hit it)
            "00000002"    // 2 per-region lengths
            "00000005"    // region 0 delivered 5 bytes
            "00000003"    // region 1 delivered 3 bytes
            "00000001"    // payload: inline discriminant
            "00000008"    // one scatter-gather body, 8 bytes
            "0001020304050607");
  rpc::XdrDecoder dec(wire);
  const nfs::ReadvRes back = nfs::ReadvRes::decode(dec);
  EXPECT_TRUE(dec.done());
  EXPECT_TRUE(back.eof);
  EXPECT_EQ(back.lengths, (std::vector<uint32_t>{5, 3}));
  EXPECT_EQ(back.data.size(), 8u);
}

TEST(WireGolden, FileLayout) {
  nfs::FileLayout l;
  l.aggregation = nfs::AggregationType::kRoundRobin;
  l.stripe_unit = 0x200000;
  l.devices = {nfs::DeviceId{0}, nfs::DeviceId{1}};
  l.fhs = {nfs::FileHandle{10}, nfs::FileHandle{11}};
  rpc::XdrEncoder enc;
  l.encode(enc);
  EXPECT_EQ(hex(std::move(enc).take()),
            "00000001"          // round-robin
            "0000000000200000"  // 2 MiB stripe unit
            "00000002"          // 2 devices
            "00000000"          // device 0
            "00000001"          // device 1
            "00000002"          // 2 filehandles
            "000000000000000a"  // fh 10
            "000000000000000b"  // fh 11
            "00000000");        // 0 params
}

TEST(WireGolden, ErasureCodedFileLayout) {
  // EC(2+1): the k/m split rides the existing params list — no new wire
  // fields, so pre-redundancy decoders still parse the layout body.
  nfs::FileLayout l;
  l.aggregation = nfs::AggregationType::kErasureCoded;
  l.stripe_unit = 0x10000;
  l.devices = {nfs::DeviceId{0}, nfs::DeviceId{1}, nfs::DeviceId{2}};
  l.fhs = {nfs::FileHandle{7}, nfs::FileHandle{8}, nfs::FileHandle{9}};
  l.params = {2, 1};  // k data + m parity fragments
  rpc::XdrEncoder enc;
  l.encode(enc);
  const std::vector<std::byte> wire = std::move(enc).take();
  EXPECT_EQ(hex(wire),
            "00000006"          // erasure-coded
            "0000000000010000"  // 64 KiB stripe unit
            "00000003"          // 3 devices (k + m)
            "00000000"          // device 0 (data)
            "00000001"          // device 1 (data)
            "00000002"          // device 2 (parity)
            "00000003"          // 3 filehandles
            "0000000000000007"  // fh 7
            "0000000000000008"  // fh 8
            "0000000000000009"  // fh 9
            "00000002"          // 2 params
            "0000000000000002"  // k = 2
            "0000000000000001"); // m = 1
  rpc::XdrDecoder dec(wire);
  const nfs::FileLayout back = nfs::FileLayout::decode(dec);
  EXPECT_TRUE(dec.done());
  EXPECT_EQ(back.aggregation, nfs::AggregationType::kErasureCoded);
  EXPECT_EQ(back.params, (std::vector<uint64_t>{2, 1}));
}

TEST(WireGolden, WriteResAndCommitResCarryBootVerifier) {
  rpc::XdrEncoder enc;
  nfs::WriteRes{0x2000, nfs::StableHow::kUnstable, 5, 0x1122334455667788ull}
      .encode(enc);
  nfs::CommitRes{0xCAFEF00DD15EA5E5ull}.encode(enc);
  const std::vector<std::byte> wire = std::move(enc).take();
  EXPECT_EQ(hex(wire),
            "0000000000002000"    // count
            "00000000"            // committed = UNSTABLE4
            "0000000000000005"    // post-op change attribute
            "1122334455667788"    // WRITE verifier (boot-instance cookie)
            "cafef00dd15ea5e5");  // COMMIT verifier
  // Round-trip: a restarted server's fresh verifier must survive the codec
  // bit-exactly — replay detection compares these 64 bits for equality.
  rpc::XdrDecoder dec(wire);
  const nfs::WriteRes w = nfs::WriteRes::decode(dec);
  const nfs::CommitRes c = nfs::CommitRes::decode(dec);
  EXPECT_EQ(w.verifier, 0x1122334455667788ull);
  EXPECT_EQ(c.verifier, 0xCAFEF00DD15EA5E5ull);
  EXPECT_NE(w.verifier, c.verifier);  // mismatch == restart intervened
}

TEST(WireGolden, InlineVsVirtualPayload) {
  rpc::XdrEncoder enc;
  enc.put_payload(rpc::Payload::from_string("hi"));
  enc.put_payload(rpc::Payload::virtual_bytes(0x100000));
  EXPECT_EQ(hex(std::move(enc).take()),
            "00000001"          // inline discriminant
            "00000002"          // length 2
            "68690000"          // "hi" + padding
            "00000000"          // virtual discriminant
            "0000000000100000");  // 1 MiB virtual length
}

TEST(WireGolden, OpenArgsAndRes) {
  rpc::XdrEncoder enc;
  nfs::OpenArgs{"f", true, nfs::ShareAccess::kRead}.encode(enc);
  nfs::OpenRes{nfs::Stateid{3},
               nfs::Fattr{nfs::FileType::kRegular, 9, 100, 2, 0},
               nfs::DelegationType::kRead}
      .encode(enc);
  EXPECT_EQ(hex(std::move(enc).take()),
            "00000001" "66000000"  // name "f"
            "00000001"             // create = true
            "00000001"             // share = read
            "0000000000000003"     // stateid
            "00000001"             // type regular
            "0000000000000009"     // fileid
            "0000000000000064"     // size 100
            "0000000000000002"     // change 2
            "0000000000000000"     // mtime
            "00000001");           // read delegation
}

}  // namespace
}  // namespace dpnfs
