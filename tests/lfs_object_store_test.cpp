#include <gtest/gtest.h>

#include <string>

#include "lfs/object_store.hpp"
#include "sim/network.hpp"
#include "util/bytes.hpp"

namespace dpnfs::lfs {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

struct Fixture {
  sim::Simulation sim;
  sim::Network net{sim};
  sim::Node& node = net.add_node(sim::NodeParams{
      .name = "store0",
      .nic = sim::NicParams{},
      .disk = sim::DiskParams{.bytes_per_sec = 50e6, .positioning = sim::ms(5),
                              .per_request = 0},
      .cpu = sim::CpuParams{}});

  ObjectStoreParams params{};
  std::unique_ptr<ObjectStore> store;

  explicit Fixture(ObjectStoreParams p = {}) : params(p) {
    store = std::make_unique<ObjectStore>(node, params);
  }

  /// Runs a coroutine to completion on the sim.
  void run(Task<void> t) {
    sim.spawn(std::move(t));
    sim.run();
  }
};

TEST(ObjectStore, RequiresDisk) {
  sim::Simulation sim;
  sim::Network net{sim};
  auto& diskless = net.add_node(sim::NodeParams{.name = "x",
                                                .nic = sim::NicParams{},
                                                .disk = std::nullopt,
                                                .cpu = sim::CpuParams{}});
  EXPECT_THROW(ObjectStore store(diskless), std::logic_error);
}

TEST(ObjectStore, CreateRemoveExists) {
  Fixture f;
  EXPECT_FALSE(f.store->exists(1));
  f.store->create(1);
  EXPECT_TRUE(f.store->exists(1));
  EXPECT_EQ(f.store->size(1), 0u);
  EXPECT_THROW(f.store->create(1), std::logic_error);
  f.store->remove(1);
  EXPECT_FALSE(f.store->exists(1));
  EXPECT_THROW(f.store->remove(1), std::logic_error);
  EXPECT_THROW(f.store->size(1), std::logic_error);
}

Task<void> write_read_verify(ObjectStore& s) {
  co_await s.write(5, 0, Payload::from_string("hello, object store"), false);
  EXPECT_EQ(s.size(5), 19u);
  Payload p = co_await s.read(5, 0, 20);
  EXPECT_EQ(p, Payload::from_string("hello, object store"));
  // Partial read.
  Payload q = co_await s.read(5, 7, 6);
  EXPECT_EQ(q, Payload::from_string("object"));
}

TEST(ObjectStore, WriteReadRoundTrip) {
  Fixture f;
  f.run(write_read_verify(*f.store));
}

Task<void> overwrite_check(ObjectStore& s) {
  co_await s.write(1, 0, Payload::from_string("aaaaaaaaaa"), false);
  co_await s.write(1, 3, Payload::from_string("BBB"), false);
  Payload p = co_await s.read(1, 0, 10);
  EXPECT_EQ(p, Payload::from_string("aaaBBBaaaa"));
}

TEST(ObjectStore, OverwriteMiddle) {
  Fixture f;
  f.run(overwrite_check(*f.store));
}

Task<void> hole_check(ObjectStore& s) {
  co_await s.write(1, 10, Payload::from_string("xy"), false);
  EXPECT_EQ(s.size(1), 12u);
  Payload p = co_await s.read(1, 0, 12);
  EXPECT_TRUE(p.is_inline());
  EXPECT_EQ(p.size(), 12u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.data()[i], std::byte{0});
  EXPECT_EQ(p.data()[10], static_cast<std::byte>('x'));
}

TEST(ObjectStore, HolesReadAsZeros) {
  Fixture f;
  f.run(hole_check(*f.store));
}

Task<void> short_read_check(ObjectStore& s) {
  co_await s.write(1, 0, Payload::from_string("short"), false);
  Payload p = co_await s.read(1, 3, 100);
  EXPECT_EQ(p, Payload::from_string("rt"));
  Payload q = co_await s.read(1, 5, 10);
  EXPECT_EQ(q.size(), 0u);
  Payload r = co_await s.read(1, 100, 10);
  EXPECT_EQ(r.size(), 0u);
}

TEST(ObjectStore, ShortReadsAtEof) {
  Fixture f;
  f.run(short_read_check(*f.store));
}

Task<void> virtual_poison_check(ObjectStore& s) {
  co_await s.write(1, 0, Payload::from_string("realdata"), false);
  co_await s.write(1, 4, Payload::virtual_bytes(2), false);
  Payload p = co_await s.read(1, 0, 8);
  EXPECT_FALSE(p.is_inline());  // poisoned range
  EXPECT_EQ(p.size(), 8u);
  // Outside the poison, content is still real.
  Payload q = co_await s.read(1, 0, 4);
  EXPECT_EQ(q, Payload::from_string("real"));
  // Overwriting the poison with real bytes heals it.
  co_await s.write(1, 4, Payload::from_string("DA"), false);
  Payload r = co_await s.read(1, 0, 8);
  EXPECT_EQ(r, Payload::from_string("realDAta"));
}

TEST(ObjectStore, VirtualWritesPoisonAndHeal) {
  Fixture f;
  f.run(virtual_poison_check(*f.store));
}

Task<void> truncate_check(ObjectStore& s) {
  co_await s.write(1, 0, Payload::from_string("0123456789"), false);
  s.truncate(1, 4);
  EXPECT_EQ(s.size(1), 4u);
  Payload p = co_await s.read(1, 0, 10);
  EXPECT_EQ(p, Payload::from_string("0123"));
  // Extending truncate leaves a hole.
  s.truncate(1, 8);
  Payload q = co_await s.read(1, 0, 8);
  EXPECT_TRUE(q.is_inline());
  EXPECT_EQ(q.data()[3], static_cast<std::byte>('3'));
  EXPECT_EQ(q.data()[4], std::byte{0});
}

TEST(ObjectStore, Truncate) {
  Fixture f;
  f.run(truncate_check(*f.store));
}

Task<void> unstable_then_commit(ObjectStore& s, sim::Simulation& sim,
                                sim::Time& write_done, sim::Time& commit_done) {
  co_await s.write(1, 0, Payload::virtual_bytes(10_MiB), false);
  write_done = sim.now();
  EXPECT_GT(s.dirty_bytes(), 0u);
  co_await s.commit(1);
  commit_done = sim.now();
  EXPECT_EQ(s.dirty_bytes(), 0u);
}

TEST(ObjectStore, UnstableWriteIsFastCommitPaysDisk) {
  Fixture f;
  sim::Time write_done = -1, commit_done = -1;
  f.run(unstable_then_commit(*f.store, f.sim, write_done, commit_done));
  EXPECT_EQ(write_done, 0);  // buffered: no simulated time
  // 10 MiB at 50 MB/s ~ 0.21 s.
  EXPECT_GT(commit_done, sim::ms(180));
  EXPECT_GT(f.store->stats().disk_write_bytes, 10u * 1000 * 1000);
}

Task<void> stable_write(ObjectStore& s, sim::Simulation& sim, sim::Time& done) {
  co_await s.write(1, 0, Payload::virtual_bytes(10_MiB), true);
  done = sim.now();
}

TEST(ObjectStore, StableWritePaysDiskImmediately) {
  Fixture f;
  sim::Time done = -1;
  f.run(stable_write(*f.store, f.sim, done));
  EXPECT_GT(done, sim::ms(180));
  EXPECT_EQ(f.store->dirty_bytes(), 0u);
}

Task<void> overflow_dirty(ObjectStore& s, sim::Simulation& sim,
                          sim::Time& first_done, sim::Time& all_done) {
  // Dirty limit is 8 MiB (set below); the first 4 MiB write is free, the
  // rest must throttle at disk speed.
  co_await s.write(1, 0, Payload::virtual_bytes(4_MiB), false);
  first_done = sim.now();
  for (int i = 1; i < 16; ++i) {
    co_await s.write(1, static_cast<uint64_t>(i) * 4_MiB,
                     Payload::virtual_bytes(4_MiB), false);
  }
  all_done = sim.now();
}

TEST(ObjectStore, DirtyLimitThrottlesWriters) {
  ObjectStoreParams p;
  p.dirty_limit_bytes = 8_MiB;
  Fixture f(p);
  sim::Time first_done = -1, all_done = -1;
  f.run(overflow_dirty(*f.store, f.sim, first_done, all_done));
  EXPECT_EQ(first_done, 0);
  // 64 MiB total, ~56 MiB must hit the 50 MB/s disk: >= 1.1 s.
  EXPECT_GT(sim::to_seconds(all_done), 1.0);
  EXPECT_LE(f.store->dirty_bytes(), 8_MiB);
}

Task<void> warm_read(ObjectStore& s, sim::Simulation& sim, sim::Time& elapsed) {
  co_await s.write(1, 0, Payload::virtual_bytes(16_MiB), false);
  co_await s.commit(1);
  const sim::Time start = sim.now();
  (void)co_await s.read(1, 0, 16_MiB);
  elapsed = sim.now() - start;
}

TEST(ObjectStore, WarmCacheReadCostsNoDiskTime) {
  Fixture f;
  sim::Time elapsed = -1;
  f.run(warm_read(*f.store, f.sim, elapsed));
  EXPECT_EQ(elapsed, 0);
  EXPECT_EQ(f.store->stats().disk_reads, 0u);
}

Task<void> cold_read(ObjectStore& s, sim::Simulation& sim, sim::Time& elapsed) {
  co_await s.write(1, 0, Payload::virtual_bytes(16_MiB), false);
  co_await s.commit(1);
  s.drop_caches();
  const sim::Time start = sim.now();
  (void)co_await s.read(1, 0, 16_MiB);
  elapsed = sim.now() - start;
}

TEST(ObjectStore, ColdReadPaysDisk) {
  Fixture f;
  sim::Time elapsed = -1;
  f.run(cold_read(*f.store, f.sim, elapsed));
  // 16 MiB at 50 MB/s ~ 0.34 s.
  EXPECT_GT(sim::to_seconds(elapsed), 0.3);
  EXPECT_GT(f.store->stats().disk_read_bytes, 16u * 1000 * 1000);
}

Task<void> eviction_scenario(ObjectStore& s) {
  // Cache limit is 4 MiB (set below); write 16 MiB, then re-read the start:
  // it must have been evicted.
  co_await s.write(1, 0, Payload::virtual_bytes(16_MiB), false);
  co_await s.commit(1);
  (void)co_await s.read(1, 0, 1_MiB);
}

TEST(ObjectStore, LruEvictionBoundsResidency) {
  ObjectStoreParams p;
  p.cache_limit_bytes = 4_MiB;
  Fixture f(p);
  f.run(eviction_scenario(*f.store));
  EXPECT_GT(f.store->stats().disk_reads, 0u);
}

Task<void> write_implicit_create(ObjectStore& s) {
  co_await s.write(99, 0, Payload::from_string("implicit"), false);
  EXPECT_TRUE(s.exists(99));
}

TEST(ObjectStore, WriteCreatesObjectImplicitly) {
  Fixture f;
  f.run(write_implicit_create(*f.store));
}

Task<void> commit_all_scenario(ObjectStore& s) {
  co_await s.write(1, 0, Payload::virtual_bytes(1_MiB), false);
  co_await s.write(2, 0, Payload::virtual_bytes(1_MiB), false);
  co_await s.write(3, 0, Payload::virtual_bytes(1_MiB), false);
  EXPECT_EQ(s.dirty_bytes(), 3 * 1_MiB);
  co_await s.commit_all();
  EXPECT_EQ(s.dirty_bytes(), 0u);
}

TEST(ObjectStore, CommitAllDrainsEverything) {
  Fixture f;
  f.run(commit_all_scenario(*f.store));
}

TEST(ObjectStore, RemoveDropsDirtyAccounting) {
  Fixture f;
  f.run([](ObjectStore& s) -> Task<void> {
    co_await s.write(1, 0, Payload::virtual_bytes(2_MiB), false);
    EXPECT_EQ(s.dirty_bytes(), 2_MiB);
    s.remove(1);
    EXPECT_EQ(s.dirty_bytes(), 0u);
    co_await s.commit_all();  // stale queue entries must be skipped safely
  }(*f.store));
}

}  // namespace
}  // namespace dpnfs::lfs
