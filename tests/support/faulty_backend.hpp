// Test support: an nfs::Backend decorator that fails a scripted number of
// calls per operation.  Shared by failure_test.cpp and the fault-injection
// matrix (`ctest -L faults`).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "nfs/backend.hpp"

namespace dpnfs::testsupport {

/// Backend decorator with per-operation failure injection.
///
///   FaultyBackend faulty(inner);
///   faulty.fail(FaultyBackend::Op::kRead, nfs::Status::kIo);      // forever
///   faulty.fail(FaultyBackend::Op::kWrite, nfs::Status::kNoSpc, 3);  // 3 calls
///   faulty.clear(FaultyBackend::Op::kRead);
class FaultyBackend final : public nfs::Backend {
 public:
  enum class Op : size_t { kRead = 0, kWrite, kCommit, kGetattr, kLookup };
  static constexpr size_t kOpCount = 5;
  /// `count` value meaning "fail every call until clear()".
  static constexpr uint64_t kForever = ~0ull;

  explicit FaultyBackend(nfs::Backend& inner) : inner_(inner) {}

  /// Makes the next `count` calls of `op` fail with `status`.
  void fail(Op op, nfs::Status status, uint64_t count = kForever) {
    auto& r = rules_[static_cast<size_t>(op)];
    r.status = status;
    r.remaining = count;
  }
  void clear(Op op) { rules_[static_cast<size_t>(op)].remaining = 0; }
  void clear_all() {
    for (auto& r : rules_) r.remaining = 0;
  }
  /// Total failures injected so far (all ops).
  uint64_t injected() const noexcept { return injected_; }

  nfs::FileHandle root_fh() const override { return inner_.root_fh(); }
  sim::Task<nfs::Status> getattr(nfs::FileHandle fh, nfs::Fattr* out) override {
    if (auto s = consume(Op::kGetattr)) co_return *s;
    co_return co_await inner_.getattr(fh, out);
  }
  sim::Task<nfs::Status> set_size(nfs::FileHandle fh, uint64_t size) override {
    return inner_.set_size(fh, size);
  }
  sim::Task<nfs::Status> lookup(nfs::FileHandle dir, const std::string& name,
                                nfs::FileHandle* out) override {
    if (auto s = consume(Op::kLookup)) co_return *s;
    co_return co_await inner_.lookup(dir, name, out);
  }
  sim::Task<nfs::Status> mkdir(nfs::FileHandle dir, const std::string& name,
                               nfs::FileHandle* out) override {
    return inner_.mkdir(dir, name, out);
  }
  sim::Task<nfs::Status> open(nfs::FileHandle dir, const std::string& name,
                              bool create, nfs::FileHandle* out,
                              nfs::Fattr* attr) override {
    return inner_.open(dir, name, create, out, attr);
  }
  sim::Task<nfs::Status> remove(nfs::FileHandle dir,
                                const std::string& name) override {
    return inner_.remove(dir, name);
  }
  sim::Task<nfs::Status> rename(nfs::FileHandle sd, const std::string& o,
                                nfs::FileHandle dd,
                                const std::string& n) override {
    return inner_.rename(sd, o, dd, n);
  }
  sim::Task<nfs::Status> readdir(nfs::FileHandle dir,
                                 std::vector<nfs::DirEntry>* out) override {
    return inner_.readdir(dir, out);
  }
  sim::Task<nfs::Status> read(nfs::FileHandle fh, uint64_t offset,
                              uint32_t count, rpc::Payload* out, bool* eof,
                              obs::TraceContext trace = {}) override {
    if (auto s = consume(Op::kRead)) co_return *s;
    co_return co_await inner_.read(fh, offset, count, out, eof, trace);
  }
  sim::Task<nfs::Status> write(nfs::FileHandle fh, uint64_t offset,
                               const rpc::Payload& data, nfs::StableHow stable,
                               nfs::StableHow* committed, uint64_t* post_change,
                               obs::TraceContext trace = {}) override {
    if (auto s = consume(Op::kWrite)) co_return *s;
    co_return co_await inner_.write(fh, offset, data, stable, committed,
                                    post_change, trace);
  }
  sim::Task<nfs::Status> commit(nfs::FileHandle fh,
                                obs::TraceContext trace = {}) override {
    if (auto s = consume(Op::kCommit)) co_return *s;
    co_return co_await inner_.commit(fh, trace);
  }

 private:
  struct Rule {
    nfs::Status status = nfs::Status::kIo;
    uint64_t remaining = 0;
  };

  /// Returns the injected status (consuming one failure) or nullopt.
  std::optional<nfs::Status> consume(Op op) {
    Rule& r = rules_[static_cast<size_t>(op)];
    if (r.remaining == 0) return std::nullopt;
    if (r.remaining != kForever) --r.remaining;
    ++injected_;
    return r.status;
  }

  nfs::Backend& inner_;
  std::array<Rule, kOpCount> rules_{};
  uint64_t injected_ = 0;
};

}  // namespace dpnfs::testsupport
