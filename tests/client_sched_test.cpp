// Per-data-server write-back scheduler: pipeline independence under faults,
// elevator coalescing of queued extents, the one-COMMIT-per-DS fsync
// contract, scatter-gather payload marshalling, and the client-cache
// correctness fixes that rode along (short-READ handling, files_ iteration
// across suspensions).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/adapters.hpp"
#include "core/deployment.hpp"
#include "lfs/object_store.hpp"
#include "nfs/client.hpp"
#include "nfs/local_backend.hpp"
#include "nfs/server.hpp"
#include "rpc/fabric.hpp"
#include "rpc/xdr.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "util/bytes.hpp"

namespace dpnfs {
namespace {

using namespace dpnfs::util::literals;
using nfs::ClientConfig;
using nfs::NfsClient;
using rpc::Payload;
using sim::Task;

/// Deterministic content for [offset, offset+length): every byte is a
/// function of its absolute file offset and a seed, so reassembled reads
/// are checkable regardless of which WRITEs carried them.
Payload pattern(uint64_t seed, uint64_t offset, uint64_t length) {
  std::vector<std::byte> v(length);
  for (uint64_t i = 0; i < length; ++i) {
    const uint64_t o = offset + i;
    v[i] = static_cast<std::byte>((o * 131 + seed * 29 + (o >> 12) * 7) & 0xFF);
  }
  return Payload::inline_bytes(std::move(v));
}

nfs::NfsClient& native(core::Deployment& d, size_t i) {
  return dynamic_cast<core::NfsFileSystemClient&>(d.client(i)).native();
}

// ---------------------------------------------------------------------------
// Tentpole: a crashed DS never stalls write-back bound for healthy DSes
// ---------------------------------------------------------------------------

TEST(ClientSched, CrashedDsDoesNotBlockHealthyPipelines) {
  constexpr uint64_t kFile = 24_MiB;   // 2 MB stripes over 6 DSes
  constexpr uint64_t kDsShare = 4_MiB; // what the crashed DS would absorb

  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 6;
  cfg.clients = 1;
  cfg.nfs_client.wb_window_per_ds = 2;
  cfg.nfs_client.ds_timeout = sim::sec(3);
  cfg.nfs_client.ds_rpc_retries = 0;
  cfg.nfs_client.slice_retries = 0;
  cfg.nfs_client.breaker_threshold = 2;
  cfg.nfs_client.breaker_reset = sim::sec(60);
  // Storage node 1's NFS daemon is dead from the start; its WRITEs dangle
  // until the 3 s deadline, then degrade to the MDS.
  cfg.faults.crash_service(1, rpc::kNfsPort, 0);

  core::Deployment d(cfg);
  uint64_t wire_at_probe = 0;
  sim::Time fsync_done = 0;
  bool data_ok = false;

  d.simulation().spawn([](core::Deployment& d, sim::Time& fsync_done,
                          bool& data_ok) -> Task<void> {
    co_await d.mount_all();
    auto& c = native(d, 0);
    auto f = co_await c.open("/f", true);
    co_await c.write(f, 0, pattern(1, 0, kFile));
    co_await c.fsync(f);
    fsync_done = d.simulation().now();
    co_await c.close(f);

    c.drop_caches();
    auto g = co_await c.open("/f", false);
    Payload back = co_await c.read(g, 0, kFile);
    data_ok = back == pattern(1, 0, kFile);
    co_await c.close(g);
  }(d, fsync_done, data_ok));

  // Probe mid-fault: by t=2s every healthy DS has drained, while the dead
  // DS's slices are still dangling inside their 3 s deadline.  The old
  // global write-back window serialized behind those danglers.
  d.simulation().spawn([](core::Deployment& d, uint64_t& out) -> Task<void> {
    co_await d.simulation().delay(sim::sec(2));
    out = native(d, 0).stats().wire_write_bytes;
  }(d, wire_at_probe));

  d.simulation().run();

  EXPECT_EQ(wire_at_probe, kFile - kDsShare);
  EXPECT_GT(fsync_done, sim::sec(3));  // waited out the dead DS's deadline
  const nfs::ClientStats st = native(d, 0).stats();
  EXPECT_GE(st.mds_fallbacks, 2u);     // both of DS1's stripes degraded
  EXPECT_GE(st.breaker_trips, 1u);
  EXPECT_TRUE(data_ok);
}

// ---------------------------------------------------------------------------
// Coalescing
// ---------------------------------------------------------------------------

struct Rig {
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  sim::Node& server_node = net.add_node(sim::NodeParams{
      .name = "server",
      .nic = sim::NicParams{},
      .disk = sim::DiskParams{},
      .cpu = sim::CpuParams{}});
  sim::Node& client_node = net.add_node(sim::NodeParams{
      .name = "client",
      .nic = sim::NicParams{},
      .disk = std::nullopt,
      .cpu = sim::CpuParams{}});
  lfs::ObjectStore store{server_node};
  nfs::LocalBackend backend{store};
  nfs::NfsServer server{fabric, server_node, rpc::kNfsPort, backend};
  std::unique_ptr<NfsClient> client;

  explicit Rig(ClientConfig cfg = {}) {
    cfg.pnfs_enabled = false;
    server.start();
    client = std::make_unique<NfsClient>(fabric, client_node, server.address(),
                                         "t@SIM", cfg);
  }

  void run(Task<void> t) {
    sim.spawn(std::move(t));
    sim.run();
  }
};

TEST(ClientSched, AdjacentSmallDirtiesLeaveAsOneWsizeWrite) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    // 256 adjacent 8 KB application writes = exactly one wsize (2 MB) chunk.
    for (uint64_t i = 0; i < 256; ++i) {
      co_await r.client->write(f, i * 8_KiB, pattern(2, i * 8_KiB, 8_KiB));
    }
    co_await r.client->fsync(f);
    co_await r.client->close(f);

    const nfs::ClientStats st = r.client->stats();
    EXPECT_EQ(st.sched_writes, 1u);
    EXPECT_EQ(st.wire_write_bytes, 2_MiB);
  }(r));
}

TEST(ClientSched, QueuedExtentsCoalesceAndNewestDataWins) {
  ClientConfig cfg;
  cfg.wb_window_per_ds = 1;
  // Keep the application far faster than the wire so the first WRITE is
  // still in flight — pinning the single window slot — while later extents
  // pile up in the queue.
  cfg.cpu_ns_per_byte = 0.5;
  Rig r(cfg);
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);

    // Chunk A dispatches immediately and occupies the window.
    co_await r.client->write(f, 2_MiB, pattern(3, 2_MiB, 2_MiB));
    // Chunk B queues behind it.
    co_await r.client->write(f, 0, pattern(4, 0, 2_MiB));
    // Overwrite 8 KB inside queued-but-undispatched B: the queue must trim
    // the stale extent (newest data wins), leaving three adjacent pieces.
    co_await r.client->write(f, 1_MiB, pattern(5, 1_MiB, 8_KiB));
    co_await r.client->fsync(f);
    co_await r.client->close(f);

    // The elevator re-merged [0,1M) + the fresh 8 KB + [1M+8K,2M) into one
    // wsize WRITE: two merge events covering 1 MiB of riding bytes.
    const nfs::ClientStats st = r.client->stats();
    EXPECT_EQ(st.sched_writes, 2u);
    EXPECT_EQ(st.sched_coalesced_extents, 2u);
    EXPECT_EQ(st.sched_coalesced_bytes, 1_MiB);
    EXPECT_EQ(st.wire_write_bytes, 4_MiB);

    // The server saw the post-overwrite bytes, not the stale queued ones.
    r.client->drop_caches();
    auto g = co_await r.client->open("/f", false);
    Payload back = co_await r.client->read(g, 0, 4_MiB);
    Payload want = pattern(4, 0, 1_MiB);
    want.append(pattern(5, 1_MiB, 8_KiB));
    want.append(pattern(4, 1_MiB + 8_KiB, 1_MiB - 8_KiB));
    want.append(pattern(3, 2_MiB, 2_MiB));
    EXPECT_EQ(back, want);
    co_await r.client->close(g);
  }(r));
}

TEST(ClientSched, CoalescingCanBeDisabled) {
  ClientConfig cfg;
  cfg.wb_window_per_ds = 1;
  cfg.cpu_ns_per_byte = 0.5;
  cfg.coalesce_writes = false;
  Rig r(cfg);
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 2_MiB, pattern(3, 2_MiB, 2_MiB));
    co_await r.client->write(f, 0, pattern(4, 0, 2_MiB));
    co_await r.client->write(f, 1_MiB, pattern(5, 1_MiB, 8_KiB));
    co_await r.client->fsync(f);
    co_await r.client->close(f);

    // Same scenario as above, but every trimmed piece goes out on its own.
    const nfs::ClientStats st = r.client->stats();
    EXPECT_EQ(st.sched_coalesced_extents, 0u);
    EXPECT_EQ(st.sched_writes, 4u);
    EXPECT_EQ(st.wire_write_bytes, 4_MiB);
  }(r));
}

// ---------------------------------------------------------------------------
// Vectored (list) I/O: strided dirty extents fold into one WRITEV
// ---------------------------------------------------------------------------

TEST(ClientSched, StridedDirtiesDispatchAsOneVectoredWrite) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    // 16 strided 8 KB records, 16 KB apart: mutually non-adjacent dirty
    // extents the elevator cannot merge — only a vectored WRITE folds them.
    for (uint64_t i = 0; i < 16; ++i) {
      co_await r.client->write(f, i * 16_KiB, pattern(14, i * 16_KiB, 8_KiB));
    }
    const uint64_t rpcs_before = r.client->stats().rpcs;
    co_await r.client->fsync(f);

    const nfs::ClientStats st = r.client->stats();
    EXPECT_EQ(st.sched_writes, 1u);
    EXPECT_EQ(st.vectored_writes, 1u);
    EXPECT_EQ(st.vectored_regions, 16u);
    EXPECT_EQ(st.vectored_bytes, 128_KiB);
    EXPECT_EQ(st.wire_write_bytes, 128_KiB);
    EXPECT_EQ(st.sched_coalesced_extents, 0u);  // nothing was adjacent
    EXPECT_EQ(st.rpcs - rpcs_before, 2u);  // one WRITEV + one COMMIT
    co_await r.client->close(f);

    // Byte-exact server state: every record intact, the strided gaps zeros.
    r.client->drop_caches();
    auto g = co_await r.client->open("/f", false);
    Payload back = co_await r.client->read(g, 0, 248_KiB);
    Payload want;
    for (uint64_t i = 0; i < 16; ++i) {
      want.append(pattern(14, i * 16_KiB, 8_KiB));
      if (i != 15) {
        want.append(Payload::inline_bytes(
            std::vector<std::byte>(8_KiB, std::byte{0})));
      }
    }
    EXPECT_EQ(back, want);
    co_await r.client->close(g);
  }(r));
}

TEST(ClientSched, ListioCanBeDisabled) {
  ClientConfig cfg;
  cfg.listio_enabled = false;
  Rig r(cfg);
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    for (uint64_t i = 0; i < 16; ++i) {
      co_await r.client->write(f, i * 16_KiB, pattern(15, i * 16_KiB, 8_KiB));
    }
    const uint64_t rpcs_before = r.client->stats().rpcs;
    co_await r.client->fsync(f);

    // Same strided pattern as above, but every record is its own WRITE.
    const nfs::ClientStats st = r.client->stats();
    EXPECT_EQ(st.sched_writes, 16u);
    EXPECT_EQ(st.vectored_writes, 0u);
    EXPECT_EQ(st.wire_write_bytes, 128_KiB);
    EXPECT_EQ(st.rpcs - rpcs_before, 17u);  // 16 WRITEs + one COMMIT
    co_await r.client->close(f);
  }(r));
}

TEST(ClientSched, ReplayAfterRestartFoldsRegionListIntoOneWritev) {
  // 16 strided unstable WRITEs land on a DS which then crash-restarts
  // before COMMIT: the client must replay the whole region list — and the
  // replay flush folds it into one vectored WRITE.
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 2;
  cfg.clients = 2;
  cfg.nfs_client.wb_commit_backlog = 0;  // fsync is the only COMMIT source
  cfg.nfs_client.dirty_limit_bytes = 0;  // every write flushes immediately
  // storage1's DS daemon restarts cleanly between the WRITEs and the fsync.
  cfg.faults.crash_service(1, rpc::kNfsPort, sim::ms(500), sim::ms(520));

  core::Deployment d(cfg);
  bool data_ok = false;
  d.simulation().spawn([](core::Deployment& d, bool& data_ok) -> Task<void> {
    co_await d.mount_all();
    auto& c = native(d, 0);
    auto f = co_await c.open("/f", true);
    // 16 records in storage1's stripe [2 MiB, 4 MiB), 16 KiB apart; with a
    // zero dirty limit each goes out as its own single-range WRITE.
    for (uint64_t i = 0; i < 16; ++i) {
      const uint64_t off = 2_MiB + i * 16_KiB;
      co_await c.write(f, off, pattern(16, off, 8_KiB));
    }
    EXPECT_EQ(c.stats().sched_writes, 16u);
    EXPECT_EQ(c.stats().vectored_writes, 0u);
    co_await d.simulation().delay(sim::ms(600) - d.simulation().now());

    // fsync's COMMIT returns the new incarnation's verifier: the client
    // re-dirties all 16 retained extents, and the replay flush dispatches
    // them as one 16-region WRITEV under one fresh verifier.
    co_await c.fsync(f);
    const nfs::ClientStats st = c.stats();
    EXPECT_EQ(st.verifier_mismatches, 1u);
    EXPECT_EQ(st.replayed_extents, 16u);
    EXPECT_EQ(st.replayed_bytes, 128_KiB);
    EXPECT_EQ(st.vectored_writes, 1u);
    EXPECT_EQ(st.vectored_regions, 16u);
    EXPECT_EQ(st.mds_fallbacks, 0u);  // replay, not proxy degradation

    // A second fsync is a no-op: the replayed data was committed under the
    // new verifier.
    const uint64_t writes_after_replay = c.stats().sched_writes;
    co_await c.fsync(f);
    EXPECT_EQ(c.stats().sched_writes, writes_after_replay);
    co_await c.close(f);

    auto& rdr = native(d, 1);
    auto g = co_await rdr.open("/f", false);
    Payload want;
    for (uint64_t i = 0; i < 16; ++i) {
      want.append(pattern(16, 2_MiB + i * 16_KiB, 8_KiB));
      if (i != 15) {
        want.append(Payload::inline_bytes(
            std::vector<std::byte>(8_KiB, std::byte{0})));
      }
    }
    Payload back = co_await rdr.read(g, 2_MiB, 248_KiB);
    data_ok = back == want;
    co_await rdr.close(g);
  }(d, data_ok));
  d.simulation().run();
  EXPECT_TRUE(data_ok);
}

// ---------------------------------------------------------------------------
// COMMIT batching: one COMMIT per DS per fsync, however many extents flushed
// ---------------------------------------------------------------------------

TEST(ClientSched, OneCommitPerDsPerFsync) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 6;
  cfg.clients = 1;

  core::Deployment d(cfg);
  d.simulation().spawn([](core::Deployment& d) -> Task<void> {
    co_await d.mount_all();
    auto& c = native(d, 0);
    auto f = co_await c.open("/f", true);
    // Round 1 primes everything (layout, sessions to all six DSes).
    co_await c.write(f, 0, pattern(6, 0, 12_MiB));
    co_await c.fsync(f);

    // Round 2: two disjoint 8 KB extents inside each DS's stripe — twelve
    // dirty extents, two per DS.  Small enough that nothing flushes (or
    // triggers a backlog COMMIT) before fsync.
    for (uint64_t i = 0; i < 6; ++i) {
      co_await c.write(f, i * 2_MiB + 512_KiB,
                       pattern(7, i * 2_MiB + 512_KiB, 8_KiB));
      co_await c.write(f, i * 2_MiB + 1_MiB,
                       pattern(7, i * 2_MiB + 1_MiB, 8_KiB));
    }
    const uint64_t rpcs_before = c.stats().rpcs;
    const uint64_t writes_before = c.stats().sched_writes;
    const uint64_t vec_before = c.stats().vectored_writes;
    co_await c.fsync(f);

    // The two non-adjacent extents per DS fold into one vectored WRITE
    // each: 6 WRITEVs + 6 COMMITs (one per DS, not one per extent) +
    // 1 LAYOUTCOMMIT.
    EXPECT_EQ(c.stats().sched_writes - writes_before, 6u);
    EXPECT_EQ(c.stats().vectored_writes - vec_before, 6u);
    EXPECT_EQ(c.stats().vectored_regions, 12u);
    EXPECT_EQ(c.stats().rpcs - rpcs_before, 6u + 6u + 1u);
    co_await c.close(f);
  }(d));
  d.simulation().run();
}

// ---------------------------------------------------------------------------
// Scatter-gather payloads
// ---------------------------------------------------------------------------

TEST(ClientSched, ScatterGatherPayloadXdrRoundTrip) {
  // Splice three fragments; same bytes as one flat buffer.
  Payload sg = pattern(8, 0, 1000);
  sg.append(pattern(8, 1000, 500));
  sg.append(pattern(8, 1500, 9));
  EXPECT_GE(sg.fragment_count(), 3u);
  const Payload flat = pattern(8, 0, 1509);
  EXPECT_EQ(sg, flat);

  // Fragmentation is invisible on the wire: identical XDR bytes, and the
  // decoder reassembles the same content.
  rpc::XdrEncoder enc_sg;
  enc_sg.put_payload(sg);
  const auto wire_sg = std::move(enc_sg).take();
  rpc::XdrEncoder enc_flat;
  enc_flat.put_payload(flat);
  const auto wire_flat = std::move(enc_flat).take();
  EXPECT_EQ(wire_sg, wire_flat);

  rpc::XdrDecoder dec(wire_sg);
  const Payload back = dec.get_payload();
  EXPECT_TRUE(dec.done());
  EXPECT_EQ(back, flat);
}

// ---------------------------------------------------------------------------
// Satellite fixes: short READs and files_ iteration across suspensions
// ---------------------------------------------------------------------------

/// Forwards to an inner backend but caps every READ reply, forcing the
/// client's mid-object short-READ handling to re-issue for the tail.
class ChokedReadBackend : public nfs::Backend {
 public:
  ChokedReadBackend(nfs::Backend& inner, uint32_t cap)
      : inner_(inner), cap_(cap) {}

  uint64_t reads() const noexcept { return reads_; }

  nfs::FileHandle root_fh() const override { return inner_.root_fh(); }
  Task<nfs::Status> getattr(nfs::FileHandle fh, nfs::Fattr* out) override {
    return inner_.getattr(fh, out);
  }
  Task<nfs::Status> set_size(nfs::FileHandle fh, uint64_t size) override {
    return inner_.set_size(fh, size);
  }
  Task<nfs::Status> lookup(nfs::FileHandle dir, const std::string& name,
                           nfs::FileHandle* out) override {
    return inner_.lookup(dir, name, out);
  }
  Task<nfs::Status> mkdir(nfs::FileHandle dir, const std::string& name,
                          nfs::FileHandle* out) override {
    return inner_.mkdir(dir, name, out);
  }
  Task<nfs::Status> open(nfs::FileHandle dir, const std::string& name,
                         bool create, nfs::FileHandle* out,
                         nfs::Fattr* attr) override {
    return inner_.open(dir, name, create, out, attr);
  }
  Task<nfs::Status> remove(nfs::FileHandle dir,
                           const std::string& name) override {
    return inner_.remove(dir, name);
  }
  Task<nfs::Status> rename(nfs::FileHandle src_dir, const std::string& old_name,
                           nfs::FileHandle dst_dir,
                           const std::string& new_name) override {
    return inner_.rename(src_dir, old_name, dst_dir, new_name);
  }
  Task<nfs::Status> readdir(nfs::FileHandle dir,
                            std::vector<nfs::DirEntry>* out) override {
    return inner_.readdir(dir, out);
  }
  Task<nfs::Status> read(nfs::FileHandle fh, uint64_t offset, uint32_t count,
                         rpc::Payload* out, bool* eof,
                         obs::TraceContext trace) override {
    ++reads_;
    return inner_.read(fh, offset, std::min(count, cap_), out, eof, trace);
  }
  Task<nfs::Status> write(nfs::FileHandle fh, uint64_t offset,
                          const rpc::Payload& data, nfs::StableHow stable,
                          nfs::StableHow* committed, uint64_t* post_change,
                          obs::TraceContext trace) override {
    return inner_.write(fh, offset, data, stable, committed, post_change,
                        trace);
  }
  Task<nfs::Status> commit(nfs::FileHandle fh,
                           obs::TraceContext trace) override {
    return inner_.commit(fh, trace);
  }

 private:
  nfs::Backend& inner_;
  uint32_t cap_;
  uint64_t reads_ = 0;
};

TEST(ClientSched, MidObjectShortReadsAreReissuedNotZeroFilled) {
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  sim::Node& server_node = net.add_node(sim::NodeParams{
      .name = "server",
      .nic = sim::NicParams{},
      .disk = sim::DiskParams{},
      .cpu = sim::CpuParams{}});
  sim::Node& client_node = net.add_node(sim::NodeParams{
      .name = "client",
      .nic = sim::NicParams{},
      .disk = std::nullopt,
      .cpu = sim::CpuParams{}});
  lfs::ObjectStore store{server_node};
  nfs::LocalBackend local{store};
  ChokedReadBackend choked{local, 64 * 1024};  // short replies, no real EOF
  nfs::NfsServer server{fabric, server_node, rpc::kNfsPort, choked};
  server.start();
  ClientConfig cfg;
  cfg.pnfs_enabled = false;
  cfg.readahead_window = 0;
  NfsClient client(fabric, client_node, server.address(), "t@SIM", cfg);

  sim.spawn([](NfsClient& client, ChokedReadBackend& choked) -> Task<void> {
    co_await client.mount();
    auto f = co_await client.open("/f", true);
    co_await client.write(f, 0, pattern(9, 0, 256_KiB));
    co_await client.fsync(f);
    co_await client.close(f);
    client.drop_caches();

    auto g = co_await client.open("/f", false);
    const uint64_t reads_before = choked.reads();
    Payload back = co_await client.read(g, 0, 256_KiB);
    // Four 64 KB short replies reassembled — and every byte is real data,
    // not fabricated zeros.
    EXPECT_EQ(back, pattern(9, 0, 256_KiB));
    EXPECT_EQ(choked.reads() - reads_before, 4u);
    EXPECT_EQ(client.stats().wire_read_bytes, 256_KiB);
    co_await client.close(g);
  }(client, choked));
  sim.run();
}

TEST(ClientSched, HoleStripeReadsAsZerosAtObjectEof) {
  // Direct-pNFS: write stripes 0 and 2, leave stripe 1's object nonexistent.
  // Its DS answers with an empty EOF READ and the client must zero-fill the
  // slice — distinguishing object-EOF from a mid-object short reply.
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 3;
  cfg.clients = 2;

  core::Deployment d(cfg);
  d.simulation().spawn([](core::Deployment& d) -> Task<void> {
    co_await d.mount_all();
    auto& w = native(d, 0);
    auto f = co_await w.open("/holey", true);
    co_await w.write(f, 0, pattern(10, 0, 2_MiB));
    co_await w.write(f, 4_MiB, pattern(10, 4_MiB, 2_MiB));
    co_await w.fsync(f);
    co_await w.close(f);

    auto& rdr = native(d, 1);
    auto g = co_await rdr.open("/holey", false);
    Payload back = co_await rdr.read(g, 0, 6_MiB);
    Payload want = pattern(10, 0, 2_MiB);
    want.append(Payload::inline_bytes(
        std::vector<std::byte>(2_MiB, std::byte{0})));
    want.append(pattern(10, 4_MiB, 2_MiB));
    EXPECT_EQ(back, want);
    co_await rdr.close(g);
  }(d));
  d.simulation().run();
}

TEST(ClientSched, DropCachesDuringRecallFlushIsSafe) {
  // Regression: serve_callback used to hold a live files_ iterator across
  // the recall's co_awaited flush; a concurrent drop_caches erasing closed
  // files invalidated it.  Reproduce exactly that interleaving.
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;

  core::Deployment d(cfg);
  bool data_ok = false;
  d.simulation().spawn([](core::Deployment& d, bool& data_ok) -> Task<void> {
    co_await d.mount_all();
    auto& a = native(d, 0);
    auto& b = native(d, 1);

    // Cold cached files that drop_caches will erase mid-recall.
    for (int i = 0; i < 4; ++i) {
      const std::string path = "/cold" + std::to_string(i);
      auto h = co_await a.open(path, true);
      co_await a.write(h, 0, pattern(11, 0, 64_KiB));
      co_await a.close(h);
    }

    auto fa = co_await a.open("/shared", true);
    co_await a.write(fa, 0, pattern(12, 0, 2_MiB + 100_KiB));

    // While B's truncate drives the recall, yank A's clean closed files the
    // moment the recall's flush starts.
    d.simulation().spawn([](core::Deployment& d) -> Task<void> {
      auto& a = native(d, 0);
      while (a.layout_recalls_served() == 0) {
        co_await d.simulation().delay(sim::us(200));
      }
      a.drop_caches();
    }(d));

    co_await b.truncate("/shared", 8_MiB);  // grows the file: recall, no loss
    EXPECT_EQ(a.layout_recalls_served(), 1u);

    co_await a.close(fa);
    auto g = co_await b.open("/shared", false);
    Payload back = co_await b.read(g, 0, 2_MiB + 100_KiB);
    data_ok = back == pattern(12, 0, 2_MiB + 100_KiB);
    co_await b.close(g);
  }(d, data_ok));
  d.simulation().run();
  EXPECT_TRUE(data_ok);
}

// ---------------------------------------------------------------------------
// Readahead clamps at EOF and counts only real fetches
// ---------------------------------------------------------------------------

TEST(ClientSched, ReadaheadClampsAtEofAndCountsOnlyRealFetches) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 0, pattern(13, 0, 192_KiB));
    co_await r.client->fsync(f);
    co_await r.client->close(f);
    r.client->drop_caches();

    auto g = co_await r.client->open("/f", false);
    for (uint64_t off = 0; off < 192_KiB; off += 8_KiB) {
      Payload p = co_await r.client->read(g, off, 8_KiB);
      EXPECT_EQ(p, pattern(13, off, 8_KiB));
    }
    // The window (4 x rsize = 8 MB) dwarfs the file: readahead must clamp
    // at EOF — the wire carries exactly the file, no guaranteed-empty READs.
    EXPECT_EQ(r.client->stats().wire_read_bytes, 192_KiB);
    EXPECT_EQ(r.client->stats().readahead_fetches, 1u);

    // A second, fully cached pass fetches nothing and counts nothing.
    for (uint64_t off = 0; off < 192_KiB; off += 8_KiB) {
      (void)co_await r.client->read(g, off, 8_KiB);
    }
    EXPECT_EQ(r.client->stats().wire_read_bytes, 192_KiB);
    EXPECT_EQ(r.client->stats().readahead_fetches, 1u);
    co_await r.client->close(g);
  }(r));
}

}  // namespace
}  // namespace dpnfs
