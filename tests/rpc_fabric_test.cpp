#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rpc/fabric.hpp"
#include "sim/network.hpp"

namespace dpnfs::rpc {
namespace {

using sim::Task;

struct Fixture {
  sim::Simulation sim;
  sim::Network net{sim};
  RpcFabric fabric{net};

  sim::Node& add_node(const std::string& name, double bps = 100e6) {
    return net.add_node(sim::NodeParams{
        .name = name,
        .nic = sim::NicParams{.bytes_per_sec = bps, .latency = sim::us(10)},
        .disk = std::nullopt,
        .cpu = sim::CpuParams{.cores = 2}});
  }
};

// Echo service: replies with the same string, uppercased proc number.
RpcService echo_service() {
  return [](const CallContext& ctx, XdrDecoder& args,
            XdrEncoder& results) -> Task<void> {
    const std::string s = args.get_string();
    results.put_string(s);
    results.put_u32(ctx.header.proc);
    results.put_string(ctx.header.principal);
    co_return;
  };
}

Task<void> do_echo_call(RpcClient& client, RpcAddress to, std::string msg,
                        uint32_t proc, std::vector<std::string>& out) {
  XdrEncoder args;
  args.put_string(msg);
  auto reply = co_await client.call(to, Program::kNfs, 4, proc, std::move(args));
  EXPECT_EQ(reply.status, ReplyStatus::kAccepted);
  auto body = reply.body();
  EXPECT_EQ(body.get_string(), msg);
  EXPECT_EQ(body.get_u32(), proc);
  EXPECT_EQ(body.get_string(), "tester@SIM");
  out.push_back(msg);
}

TEST(RpcFabric, CallRoundTrip) {
  Fixture f;
  auto& client_node = f.add_node("client");
  auto& server_node = f.add_node("server");
  RpcServer server(f.fabric, server_node, kNfsPort, 2, echo_service());
  server.start();

  RpcClient client(f.fabric, client_node, "tester@SIM");
  std::vector<std::string> done;
  f.sim.spawn(do_echo_call(client, server.address(), "hello", 7, done));
  f.sim.run();
  EXPECT_EQ(done, (std::vector<std::string>{"hello"}));
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_GT(f.sim.now(), 0);  // network time elapsed
}

TEST(RpcFabric, ManyConcurrentCallsAllComplete) {
  Fixture f;
  auto& client_node = f.add_node("client");
  auto& server_node = f.add_node("server");
  RpcServer server(f.fabric, server_node, kNfsPort, 8, echo_service());
  server.start();

  RpcClient client(f.fabric, client_node, "tester@SIM");
  std::vector<std::string> done;
  for (int i = 0; i < 50; ++i) {
    f.sim.spawn(do_echo_call(client, server.address(), "m" + std::to_string(i),
                             static_cast<uint32_t>(i), done));
  }
  f.sim.run();
  EXPECT_EQ(done.size(), 50u);
  EXPECT_EQ(server.requests_served(), 50u);
  // Queue accounting is consistent after the burst: the queue drained, and
  // total residency is bounded by every request waiting the whole run.
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_GE(server.queue_wait_total(), 0);
  EXPECT_LE(server.queue_wait_total(),
            static_cast<sim::Duration>(50) * f.sim.now());
}

TEST(RpcFabric, SequentialCallsAccrueNoQueueWait) {
  // One caller awaiting each reply never queues behind itself.
  Fixture f;
  auto& client_node = f.add_node("client");
  auto& server_node = f.add_node("server");
  RpcServer server(f.fabric, server_node, kNfsPort, 8, echo_service());
  server.start();

  RpcClient client(f.fabric, client_node, "tester@SIM");
  std::vector<std::string> done;
  f.sim.spawn([](RpcClient& c, RpcAddress to,
                 std::vector<std::string>& done) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      XdrEncoder args;
      args.put_string("ping");
      auto reply = co_await c.call(to, Program::kNfs, 4, 0, std::move(args));
      EXPECT_EQ(reply.status, ReplyStatus::kAccepted);
      done.push_back("ok");
    }
  }(client, server.address(), done));
  f.sim.run();
  EXPECT_EQ(done.size(), 5u);
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_EQ(server.queue_wait_total(), 0);
}

// A slow service that sleeps; used to verify worker-count concurrency.
RpcService slow_service(sim::Simulation& sim) {
  return [&sim](const CallContext&, XdrDecoder&, XdrEncoder&) -> Task<void> {
    co_await sim.delay(sim::ms(10));
  };
}

Task<void> fire_and_count(RpcClient& client, RpcAddress to, int& completed) {
  auto reply = co_await client.call(to, Program::kNfs, 4, 0, XdrEncoder{});
  EXPECT_EQ(reply.status, ReplyStatus::kAccepted);
  ++completed;
}

TEST(RpcFabric, WorkerCountBoundsServiceConcurrency) {
  // 8 requests x 10ms service on 2 workers => at least 4 serialized waves.
  Fixture f;
  auto& client_node = f.add_node("client", 1e9);
  auto& server_node = f.add_node("server", 1e9);
  RpcServer server(f.fabric, server_node, kNfsPort, 2, slow_service(f.sim));
  server.start();

  RpcClient client(f.fabric, client_node, "tester@SIM");
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    f.sim.spawn(fire_and_count(client, server.address(), completed));
  }
  f.sim.run();
  EXPECT_EQ(completed, 8);
  EXPECT_GE(f.sim.now(), sim::ms(40));
  EXPECT_LT(f.sim.now(), sim::ms(55));
  // 8 requests on 2 workers at 10ms each: later waves sat in the queue, so
  // cumulative queue wait is substantial — and the queue is empty again.
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_GT(server.queue_wait_total(), sim::ms(40));
  EXPECT_LE(server.queue_wait_total(),
            static_cast<sim::Duration>(8) * f.sim.now());
}

RpcService throwing_service() {
  return [](const CallContext&, XdrDecoder&, XdrEncoder&) -> Task<void> {
    throw std::runtime_error("intentional");
    co_return;  // unreachable
  };
}

Task<void> expect_system_err(RpcClient& client, RpcAddress to, bool& got) {
  auto reply = co_await client.call(to, Program::kNfs, 4, 1, XdrEncoder{});
  got = (reply.status == ReplyStatus::kSystemErr);
}

TEST(RpcFabric, ServiceExceptionBecomesSystemErr) {
  Fixture f;
  auto& client_node = f.add_node("client");
  auto& server_node = f.add_node("server");
  RpcServer server(f.fabric, server_node, kNfsPort, 1, throwing_service());
  server.start();

  RpcClient client(f.fabric, client_node, "tester@SIM");
  bool got = false;
  f.sim.spawn(expect_system_err(client, server.address(), got));
  f.sim.run();
  EXPECT_TRUE(got);
}

RpcService arg_reading_service() {
  return [](const CallContext&, XdrDecoder& args, XdrEncoder&) -> Task<void> {
    (void)args.get_u64();  // service expects a u64 the client never sent
    co_return;
  };
}

Task<void> expect_garbage(RpcClient& client, RpcAddress to, bool& got) {
  auto reply = co_await client.call(to, Program::kNfs, 4, 1, XdrEncoder{});
  got = (reply.status == ReplyStatus::kGarbageArgs);
}

TEST(RpcFabric, MalformedArgsBecomeGarbageArgs) {
  Fixture f;
  auto& client_node = f.add_node("client");
  auto& server_node = f.add_node("server");
  RpcServer server(f.fabric, server_node, kNfsPort, 1, arg_reading_service());
  server.start();

  RpcClient client(f.fabric, client_node, "tester@SIM");
  bool got = false;
  f.sim.spawn(expect_garbage(client, server.address(), got));
  f.sim.run();
  EXPECT_TRUE(got);
}

TEST(RpcFabric, BulkReplyChargesWireTime) {
  // A service returning an 8 MB virtual payload over a 100 MB/s NIC should
  // take ~80 ms of wire time.
  Fixture f;
  auto& client_node = f.add_node("client");
  auto& server_node = f.add_node("server");
  RpcService bulk = [](const CallContext&, XdrDecoder&,
                       XdrEncoder& results) -> Task<void> {
    results.put_payload(Payload::virtual_bytes(8'000'000));
    co_return;
  };
  RpcServer server(f.fabric, server_node, kNfsPort, 1, bulk);
  server.start();

  RpcClient client(f.fabric, client_node, "tester@SIM");
  int completed = 0;
  f.sim.spawn(fire_and_count(client, server.address(), completed));
  f.sim.run();
  EXPECT_EQ(completed, 1);
  EXPECT_GT(sim::to_seconds(f.sim.now()), 0.078);
  EXPECT_LT(sim::to_seconds(f.sim.now()), 0.1);
}

TEST(RpcFabric, CallToUnboundAddressThrows) {
  Fixture f;
  auto& client_node = f.add_node("client");
  f.add_node("server");
  RpcClient client(f.fabric, client_node, "tester@SIM");
  bool threw = false;
  f.sim.spawn([](RpcClient& c, bool& t) -> Task<void> {
    try {
      (void)co_await c.call(RpcAddress{1, kNfsPort}, Program::kNfs, 4, 0,
                            XdrEncoder{});
    } catch (const std::logic_error&) {
      t = true;
    }
  }(client, threw));
  f.sim.run();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace dpnfs::rpc
