// End-to-end NFSv4.1 tests: a client and servers connected only through the
// RPC fabric (real XDR on the wire).  Covers the plain single-server path
// and the pNFS file-layout path with striped data servers.
#include <gtest/gtest.h>

#include <memory>

#include "lfs/object_store.hpp"
#include "nfs/client.hpp"
#include "nfs/local_backend.hpp"
#include "nfs/server.hpp"
#include "rpc/fabric.hpp"
#include "sim/network.hpp"
#include "util/bytes.hpp"

namespace dpnfs::nfs {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

sim::NodeParams storage_node(const std::string& name) {
  return sim::NodeParams{
      .name = name,
      .nic = sim::NicParams{.bytes_per_sec = 117e6, .latency = sim::us(60)},
      .disk = sim::DiskParams{.bytes_per_sec = 60e6},
      .cpu = sim::CpuParams{.cores = 2}};
}

sim::NodeParams client_node(const std::string& name) {
  return sim::NodeParams{
      .name = name,
      .nic = sim::NicParams{.bytes_per_sec = 117e6, .latency = sim::us(60)},
      .disk = std::nullopt,
      .cpu = sim::CpuParams{.cores = 2}};
}

/// Single-server fixture (plain NFSv4: no layouts).
struct SingleServer {
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  sim::Node& server_node = net.add_node(storage_node("server"));
  sim::Node& cl_node = net.add_node(client_node("client"));
  lfs::ObjectStore store{server_node};
  LocalBackend backend{store};
  NfsServer server{fabric, server_node, rpc::kNfsPort, backend};
  std::unique_ptr<NfsClient> client;

  explicit SingleServer(ClientConfig cfg = {}) {
    cfg.pnfs_enabled = false;
    server.start();
    client = std::make_unique<NfsClient>(fabric, cl_node, server.address(),
                                         "tester@SIM", cfg);
  }

  void run(Task<void> t) {
    sim.spawn(std::move(t));
    sim.run();
  }
};

TEST(NfsEndToEnd, MountAndStatRoot) {
  SingleServer f;
  bool ok = false;
  f.run([](SingleServer& f, bool& ok) -> Task<void> {
    co_await f.client->mount();
    const Fattr root = co_await f.client->stat("/");
    EXPECT_EQ(root.type, FileType::kDirectory);
    ok = true;
  }(f, ok));
  EXPECT_TRUE(ok);
}

TEST(NfsEndToEnd, CreateWriteReadBack) {
  SingleServer f;
  f.run([](SingleServer& f) -> Task<void> {
    co_await f.client->mount();
    co_await f.client->mkdir("/data");
    auto file = co_await f.client->open("/data/hello.txt", /*create=*/true);
    co_await f.client->write(file, 0, Payload::from_string("hello nfs"));
    EXPECT_EQ(f.client->file_size(file), 9u);
    Payload p = co_await f.client->read(file, 0, 9);
    EXPECT_EQ(p, Payload::from_string("hello nfs"));
    co_await f.client->close(file);
  }(f));
  // The server must actually hold the data after close (commit_on_close).
  EXPECT_EQ(f.store.dirty_bytes(), 0u);
}

TEST(NfsEndToEnd, DataSurvivesCacheDropReopen) {
  SingleServer f;
  f.run([](SingleServer& f) -> Task<void> {
    co_await f.client->mount();
    auto file = co_await f.client->open("/f", true);
    co_await f.client->write(file, 100, Payload::from_string("XYZ"));
    co_await f.client->close(file);

    auto again = co_await f.client->open("/f", false);
    EXPECT_EQ(f.client->file_size(again), 103u);
    Payload p = co_await f.client->read(again, 100, 3);
    EXPECT_EQ(p, Payload::from_string("XYZ"));
    // Hole before the data reads as zeros.
    Payload hole = co_await f.client->read(again, 0, 4);
    EXPECT_EQ(hole.size(), 4u);
    EXPECT_EQ(hole.data()[0], std::byte{0});
    co_await f.client->close(again);
  }(f));
}

TEST(NfsEndToEnd, NamespaceOperations) {
  SingleServer f;
  f.run([](SingleServer& f) -> Task<void> {
    co_await f.client->mount();
    co_await f.client->mkdir("/a");
    co_await f.client->mkdir("/a/b");
    auto file = co_await f.client->open("/a/b/f1", true);
    co_await f.client->close(file);

    auto entries = co_await f.client->readdir("/a/b");
    EXPECT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].name, "f1");

    co_await f.client->rename("/a/b/f1", "/a/f1");
    entries = co_await f.client->readdir("/a");
    EXPECT_EQ(entries.size(), 2u);  // b, f1

    co_await f.client->remove("/a/f1");
    bool noent = false;
    try {
      (void)co_await f.client->stat("/a/f1");
    } catch (const NfsError& e) {
      noent = (e.status() == Status::kNoEnt);
    }
    EXPECT_TRUE(noent);
  }(f));
}

TEST(NfsEndToEnd, OpenWithoutCreateFailsOnMissing) {
  SingleServer f;
  f.run([](SingleServer& f) -> Task<void> {
    co_await f.client->mount();
    bool noent = false;
    try {
      (void)co_await f.client->open("/missing", false);
    } catch (const NfsError& e) {
      noent = (e.status() == Status::kNoEnt);
    }
    EXPECT_TRUE(noent);
  }(f));
}

TEST(NfsEndToEnd, RemoveNonEmptyDirFails) {
  SingleServer f;
  f.run([](SingleServer& f) -> Task<void> {
    co_await f.client->mount();
    co_await f.client->mkdir("/d");
    auto file = co_await f.client->open("/d/x", true);
    co_await f.client->close(file);
    bool notempty = false;
    try {
      co_await f.client->remove("/d");
    } catch (const NfsError& e) {
      notempty = (e.status() == Status::kNotEmpty);
    }
    EXPECT_TRUE(notempty);
  }(f));
}

TEST(NfsEndToEnd, WriteBackCoalescesSmallWrites) {
  // 8 KiB application writes must reach the wire as wsize-sized WRITEs.
  SingleServer f;
  f.run([](SingleServer& f) -> Task<void> {
    co_await f.client->mount();
    auto file = co_await f.client->open("/big", true);
    const uint64_t total = 8_MiB;
    for (uint64_t off = 0; off < total; off += 8_KiB) {
      co_await f.client->write(file, off, Payload::virtual_bytes(8_KiB));
    }
    co_await f.client->close(file);
  }(f));
  // 8 MiB at wsize=2 MiB: exactly 4 WRITE rpcs (plus metadata rpcs).
  // With per-8KiB WRITEs it would be 1024.
  EXPECT_LT(f.client->stats().rpcs, 30u);
  EXPECT_EQ(f.client->stats().wire_write_bytes, 8_MiB);
}

TEST(NfsEndToEnd, UncachedModeWritesThrough) {
  ClientConfig cfg;
  cfg.data_cache = false;
  SingleServer f(cfg);
  f.run([](SingleServer& f) -> Task<void> {
    co_await f.client->mount();
    auto file = co_await f.client->open("/raw", true);
    for (int i = 0; i < 16; ++i) {
      co_await f.client->write(file, static_cast<uint64_t>(i) * 8_KiB,
                               Payload::virtual_bytes(8_KiB));
    }
    co_await f.client->close(file);
  }(f));
  // Every application write hits the wire individually.
  EXPECT_GE(f.client->stats().rpcs, 16u);
}

TEST(NfsEndToEnd, SequentialReadTriggersReadahead) {
  SingleServer f;
  f.run([](SingleServer& f) -> Task<void> {
    co_await f.client->mount();
    auto file = co_await f.client->open("/seq", true);
    co_await f.client->write(file, 0, Payload::virtual_bytes(32_MiB));
    co_await f.client->fsync(file);
    co_await f.client->close(file);
    // The write left the whole file cached; readahead only counts *real*
    // fetches, so start the read phase cold.
    f.client->drop_caches();

    auto rd = co_await f.client->open("/seq", false);
    for (uint64_t off = 0; off < 32_MiB; off += 8_KiB) {
      Payload p = co_await f.client->read(rd, off, 8_KiB);
      EXPECT_EQ(p.size(), 8_KiB);
    }
    co_await f.client->close(rd);
  }(f));
  EXPECT_GT(f.client->stats().readahead_fetches, 0u);
  // Cache hits dominate: 8 KiB reads served from 2 MiB fetches.
  EXPECT_GT(f.client->stats().cache_hit_bytes, 24_MiB);
}

TEST(NfsEndToEnd, FsyncMakesDataStable) {
  SingleServer f;
  sim::Time write_done = 0, fsync_done = 0;
  f.run([](SingleServer& f, sim::Time& wd, sim::Time& fd) -> Task<void> {
    co_await f.client->mount();
    auto file = co_await f.client->open("/stable", true);
    co_await f.client->write(file, 0, Payload::virtual_bytes(16_MiB));
    wd = f.sim.now();
    co_await f.client->fsync(file);
    fd = f.sim.now();
    EXPECT_EQ(f.store.dirty_bytes(), 0u);
    co_await f.client->close(file);
  }(f, write_done, fsync_done));
  EXPECT_GT(fsync_done, write_done);
}

// ---------------------------------------------------------------------------
// pNFS with striped data servers
// ---------------------------------------------------------------------------

/// Layout source that stripes every file round-robin across a fixed set of
/// data servers; per-device filehandles name stripe objects (fileid-keyed).
class TestLayoutSource final : public LayoutSource {
 public:
  TestLayoutSource(std::vector<DeviceEntry> devices, uint64_t stripe_unit,
                   LocalBackend* mds_backend)
      : devices_(std::move(devices)),
        stripe_unit_(stripe_unit),
        mds_backend_(mds_backend) {}

  Task<Status> get_device_list(std::vector<DeviceEntry>* out) override {
    *out = devices_;
    co_return Status::kOk;
  }

  Task<Status> layout_get(FileHandle fh, LayoutIoMode, FileLayout* out) override {
    out->aggregation = AggregationType::kRoundRobin;
    out->stripe_unit = stripe_unit_;
    for (const auto& d : devices_) {
      out->devices.push_back(d.device);
      // Stripe-object id: (fileid, device) -> unique object id.
      out->fhs.push_back(FileHandle{fh.id * 1000 + d.device.id});
    }
    co_return Status::kOk;
  }

  Task<Status> layout_commit(FileHandle fh, uint64_t new_size, bool changed,
                             uint64_t* post_change) override {
    *post_change = 0;
    if (changed) {
      committed_sizes_[fh.id] = new_size;
      co_await mds_backend_->set_size(fh, new_size);
    }
    co_return Status::kOk;
  }

  Task<Status> layout_return(FileHandle) override { co_return Status::kOk; }

  std::map<uint64_t, uint64_t> committed_sizes_;

 private:
  std::vector<DeviceEntry> devices_;
  uint64_t stripe_unit_;
  LocalBackend* mds_backend_;
};

struct PnfsCluster {
  static constexpr int kDataServers = 3;
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};

  sim::Node& mds_node = net.add_node(storage_node("mds"));
  lfs::ObjectStore mds_store{mds_node};
  LocalBackend mds_backend{mds_store};

  std::vector<std::unique_ptr<lfs::ObjectStore>> ds_stores;
  std::vector<std::unique_ptr<LocalBackend>> ds_backends;
  std::vector<std::unique_ptr<NfsServer>> ds_servers;
  std::unique_ptr<TestLayoutSource> layouts;
  std::unique_ptr<NfsServer> mds;
  sim::Node& cl_node = net.add_node(client_node("client"));
  std::unique_ptr<NfsClient> client;

  PnfsCluster() {
    std::vector<DeviceEntry> devices;
    for (int i = 0; i < kDataServers; ++i) {
      auto& node = net.add_node(storage_node("ds" + std::to_string(i)));
      ds_stores.push_back(std::make_unique<lfs::ObjectStore>(node));
      ds_backends.push_back(std::make_unique<LocalBackend>(*ds_stores.back(),
                                                           /*flat=*/true));
      ServerConfig cfg;
      cfg.is_data_server = true;
      ds_servers.push_back(std::make_unique<NfsServer>(
          fabric, node, rpc::kNfsPort, *ds_backends.back(), nullptr, cfg));
      ds_servers.back()->start();
      devices.push_back(DeviceEntry{DeviceId{static_cast<uint32_t>(i)},
                                    node.id(), rpc::kNfsPort});
    }
    layouts = std::make_unique<TestLayoutSource>(devices, 1_MiB, &mds_backend);
    mds = std::make_unique<NfsServer>(fabric, mds_node, rpc::kNfsPort,
                                      mds_backend, layouts.get());
    mds->start();
    client = std::make_unique<NfsClient>(fabric, cl_node, mds->address(),
                                         "tester@SIM");
  }

  void run(Task<void> t) {
    sim.spawn(std::move(t));
    sim.run();
  }
};

TEST(PnfsEndToEnd, LayoutGrantedAtOpen) {
  PnfsCluster f;
  f.run([](PnfsCluster& f) -> Task<void> {
    co_await f.client->mount();
    auto file = co_await f.client->open("/striped", true);
    EXPECT_TRUE(f.client->file_has_layout(file));
    co_await f.client->close(file);
  }(f));
}

TEST(PnfsEndToEnd, WritesLandStripedOnDataServers) {
  PnfsCluster f;
  f.run([](PnfsCluster& f) -> Task<void> {
    co_await f.client->mount();
    auto file = co_await f.client->open("/striped", true);
    co_await f.client->write(file, 0, Payload::virtual_bytes(6_MiB));
    co_await f.client->close(file);
  }(f));
  // 6 MiB over 3 data servers, 1 MiB stripes: 2 MiB per DS; the MDS holds
  // no file data at all.
  for (const auto& store : f.ds_stores) {
    uint64_t total = 0;
    for (uint64_t oid = 0; oid < 100000; ++oid) {
      if (store->exists(oid)) total += store->size(oid);
    }
    EXPECT_EQ(total, 2_MiB);
  }
  EXPECT_EQ(f.client->stats().wire_write_bytes, 6_MiB);
}

TEST(PnfsEndToEnd, StripedDataReadsBackCorrectly) {
  PnfsCluster f;
  f.run([](PnfsCluster& f) -> Task<void> {
    co_await f.client->mount();
    auto file = co_await f.client->open("/data", true);
    // Real content spanning several stripes (3 MiB pattern).
    std::vector<std::byte> pattern(3_MiB);
    for (size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = static_cast<std::byte>((i * 131) & 0xFF);
    }
    co_await f.client->write(file, 0, Payload::inline_bytes(pattern));
    co_await f.client->close(file);

    auto rd = co_await f.client->open("/data", false);
    Payload p = co_await f.client->read(rd, 512 * 1024, 2_MiB);
    EXPECT_TRUE(p.is_inline());
    EXPECT_EQ(p.size(), 2_MiB);
    for (size_t i = 0; i < p.size(); ++i) {
      const size_t abs = 512 * 1024 + i;
      if (p.data()[i] != static_cast<std::byte>((abs * 131) & 0xFF)) {
        ADD_FAILURE() << "content mismatch at " << abs;
        break;
      }
    }
    co_await f.client->close(rd);
  }(f));
}

TEST(PnfsEndToEnd, LayoutCommitPropagatesSize) {
  PnfsCluster f;
  f.run([](PnfsCluster& f) -> Task<void> {
    co_await f.client->mount();
    auto file = co_await f.client->open("/sz", true);
    co_await f.client->write(file, 0, Payload::virtual_bytes(5_MiB));
    co_await f.client->fsync(file);
    co_await f.client->close(file);
  }(f));
  // The MDS learned the new size via LAYOUTCOMMIT (it saw no WRITEs).
  ASSERT_EQ(f.layouts->committed_sizes_.size(), 1u);
  EXPECT_EQ(f.layouts->committed_sizes_.begin()->second, 5_MiB);
}

TEST(PnfsEndToEnd, DataServerRejectsNamespaceOps) {
  PnfsCluster f;
  bool notsupp = false;
  f.run([](PnfsCluster& f, bool& notsupp) -> Task<void> {
    // Point a client directly at a data server and try a LOOKUP.
    NfsClient rogue(f.fabric, f.cl_node, f.ds_servers[0]->address(),
                    "tester@SIM", ClientConfig{.pnfs_enabled = false});
    try {
      co_await rogue.mount();  // PUTROOTFH is fine
      (void)co_await rogue.stat("/x");
    } catch (const NfsError& e) {
      notsupp = (e.status() == Status::kNotSupp || e.status() == Status::kNoEnt);
    }
  }(f, notsupp));
  EXPECT_TRUE(notsupp);
}

}  // namespace
}  // namespace dpnfs::nfs
