// Integration tests across all five access architectures: the same
// application workload must produce identical file contents everywhere,
// and the data must physically land on the shared back end.
#include <gtest/gtest.h>

#include <memory>

#include "core/deployment.hpp"
#include "util/bytes.hpp"

namespace dpnfs::core {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

ClusterConfig small_config(Architecture arch, uint32_t clients = 2) {
  ClusterConfig cfg;
  cfg.architecture = arch;
  cfg.storage_nodes = 4;  // must stay even for the 3-tier split
  cfg.clients = clients;
  cfg.stripe_unit = 256 * 1024;
  cfg.nfs_client.rsize = 256 * 1024;
  cfg.nfs_client.wsize = 256 * 1024;
  return cfg;
}

const Architecture kAll[] = {
    Architecture::kDirectPnfs, Architecture::kNativePvfs,
    Architecture::kPnfs2Tier, Architecture::kPnfs3Tier, Architecture::kPlainNfs,
};

class AllArchitectures : public ::testing::TestWithParam<Architecture> {};

INSTANTIATE_TEST_SUITE_P(
    Archs, AllArchitectures, ::testing::ValuesIn(kAll),
    [](const ::testing::TestParamInfo<Architecture>& info) {
      std::string name = architecture_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

void run(Deployment& d, Task<void> t) {
  d.simulation().spawn(std::move(t));
  d.simulation().run();
}

TEST_P(AllArchitectures, WriteReadBackRoundTrip) {
  Deployment d(small_config(GetParam()));
  bool done = false;
  run(d, [](Deployment& d, bool& done) -> Task<void> {
    co_await d.mount_all();
    auto& fs = d.client(0);
    auto file = co_await fs.open("/roundtrip", true);

    std::vector<std::byte> pattern(1000 * 1000);  // spans several stripes
    for (size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = static_cast<std::byte>((i * 37 + 11) & 0xFF);
    }
    co_await file->write(0, Payload::inline_bytes(pattern));
    co_await file->close();

    auto rd = co_await fs.open("/roundtrip", false);
    EXPECT_EQ(rd->size(), pattern.size());
    Payload p = co_await rd->read(100'000, 500'000);
    EXPECT_TRUE(p.is_inline());
    EXPECT_EQ(p.size(), 500'000u);
    bool match = p.is_inline();
    for (size_t i = 0; i < p.size() && match; ++i) {
      match = p.data()[i] == static_cast<std::byte>(((100'000 + i) * 37 + 11) & 0xFF);
    }
    EXPECT_TRUE(match) << "content mismatch";
    co_await rd->close();
    done = true;
  }(d, done));
  EXPECT_TRUE(done);
}

TEST_P(AllArchitectures, CrossClientVisibilityAfterClose) {
  Deployment d(small_config(GetParam()));
  bool done = false;
  run(d, [](Deployment& d, bool& done) -> Task<void> {
    co_await d.mount_all();
    auto w = co_await d.client(0).open("/shared", true);
    co_await w->write(0, Payload::from_string("written by client zero"));
    co_await w->close();

    auto r = co_await d.client(1).open("/shared", false);
    EXPECT_EQ(r->size(), 22u);
    Payload p = co_await r->read(0, 22);
    EXPECT_EQ(p, Payload::from_string("written by client zero"));
    co_await r->close();
    done = true;
  }(d, done));
  EXPECT_TRUE(done);
}

TEST_P(AllArchitectures, DataLandsOnSharedBackend) {
  Deployment d(small_config(GetParam()));
  run(d, [](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    auto f = co_await d.client(0).open("/bulk", true);
    co_await f->write(0, Payload::virtual_bytes(8_MiB));
    co_await f->close();  // commit-on-close: data reaches the disks
  }(d));
  // All 8 MiB must have been written to the back-end disks, regardless of
  // the access path.
  EXPECT_GE(d.disk_write_bytes(), 8_MiB);
  // And spread across more than one storage node (striping), for all but
  // plain NFS (which also stripes, through its PVFS client).
  uint64_t nodes_with_data = 0;
  for (auto* store : d.stores()) {
    if (store->stats().disk_write_bytes > 0) ++nodes_with_data;
  }
  EXPECT_GT(nodes_with_data, 1u);
}

TEST_P(AllArchitectures, NamespaceOps) {
  Deployment d(small_config(GetParam()));
  bool done = false;
  run(d, [](Deployment& d, bool& done) -> Task<void> {
    co_await d.mount_all();
    auto& fs = d.client(0);
    co_await fs.mkdir("/dir");
    auto f = co_await fs.open("/dir/a", true);
    co_await f->close();
    auto names = co_await fs.list("/dir");
    EXPECT_EQ(names, std::vector<std::string>{"a"});
    co_await fs.rename("/dir/a", "/dir/b");
    names = co_await fs.list("/dir");
    EXPECT_EQ(names, std::vector<std::string>{"b"});
    EXPECT_EQ(co_await fs.stat_size("/dir/b"), 0u);
    co_await fs.remove("/dir/b");
    names = co_await fs.list("/dir");
    EXPECT_TRUE(names.empty());
    done = true;
  }(d, done));
  EXPECT_TRUE(done);
}

TEST_P(AllArchitectures, ConcurrentClientsDisjointFiles) {
  Deployment d(small_config(GetParam(), /*clients=*/4));
  run(d, [](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    sim::WaitGroup wg(d.simulation());
    for (size_t i = 0; i < d.client_count(); ++i) {
      wg.spawn([](Deployment& d, size_t i) -> Task<void> {
        auto& fs = d.client(i);
        const std::string path = "/file" + std::to_string(i);
        auto f = co_await fs.open(path, true);
        co_await f->write(0, Payload::virtual_bytes(4_MiB));
        co_await f->close();
        auto r = co_await fs.open(path, false);
        EXPECT_EQ(r->size(), 4_MiB);
        co_await r->close();
      }(d, i));
    }
    co_await wg.wait();
  }(d));
  EXPECT_GE(d.disk_write_bytes(), 16_MiB);
}

TEST_P(AllArchitectures, ConcurrentClientsSingleFileDisjointRegions) {
  Deployment d(small_config(GetParam(), /*clients=*/4));
  run(d, [](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    {
      auto f = co_await d.client(0).open("/single", true);
      co_await f->close();
    }
    sim::WaitGroup wg(d.simulation());
    for (size_t i = 0; i < d.client_count(); ++i) {
      wg.spawn([](Deployment& d, size_t i) -> Task<void> {
        auto f = co_await d.client(i).open("/single", false);
        co_await f->write(i * 2_MiB, Payload::virtual_bytes(2_MiB));
        co_await f->close();
      }(d, i));
    }
    co_await wg.wait();
    const uint64_t size = co_await d.client(0).stat_size("/single");
    EXPECT_EQ(size, 8_MiB);
  }(d));
}

TEST(DeploymentShape, DirectPnfsGrantsLayouts) {
  Deployment d(small_config(Architecture::kDirectPnfs));
  run(d, [](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    auto f = co_await d.client(0).open("/x", true);
    co_await f->write(0, Payload::virtual_bytes(1_MiB));
    co_await f->close();
  }(d));
  ASSERT_NE(d.translator(), nullptr);
  EXPECT_GT(d.translator()->layouts_granted(), 0u);
}

TEST(DeploymentShape, DirectPnfsWritesAreLocalToStorageNodes) {
  // With exact layouts, the only data crossing the network is
  // client -> data server; no inter-server transfers.  We can observe that
  // indirectly: bytes on disk == bytes written, and each storage node holds
  // exactly its striped share.
  ClusterConfig cfg = small_config(Architecture::kDirectPnfs, 1);
  Deployment d(cfg);
  run(d, [](Deployment& d) -> Task<void> {
    co_await d.mount_all();
    auto f = co_await d.client(0).open("/even", true);
    co_await f->write(0, Payload::virtual_bytes(8_MiB));
    co_await f->close();
  }(d));
  for (auto* store : d.stores()) {
    EXPECT_EQ(store->stats().disk_write_bytes, 2_MiB);  // 8 MiB over 4 nodes
  }
}

TEST(DeploymentShape, TwoTierMovesDataBetweenServers) {
  // In 2-tier, a data server receiving a stripe usually forwards it to the
  // PVFS storage node that actually owns it.  Disk bytes still total the
  // write, but simulated completion takes longer than Direct-pNFS for the
  // same work on identical hardware.
  auto elapsed = [](Architecture arch) {
    Deployment d(small_config(arch, 2));
    run(d, [](Deployment& d) -> Task<void> {
      co_await d.mount_all();
      sim::WaitGroup wg(d.simulation());
      for (size_t i = 0; i < d.client_count(); ++i) {
        wg.spawn([](Deployment& d, size_t i) -> Task<void> {
          auto f = co_await d.client(i).open("/f" + std::to_string(i), true);
          for (int k = 0; k < 16; ++k) {
            co_await f->write(static_cast<uint64_t>(k) * 4_MiB,
                              Payload::virtual_bytes(4_MiB));
          }
          co_await f->close();
        }(d, i));
      }
      co_await wg.wait();
    }(d));
    return d.simulation().now();
  };
  EXPECT_GT(elapsed(Architecture::kPnfs2Tier),
            elapsed(Architecture::kDirectPnfs));
}

}  // namespace
}  // namespace dpnfs::core
