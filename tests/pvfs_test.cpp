// PVFS2-like parallel file system tests: protocol math, end-to-end client
// behaviour over the RPC fabric, and the PVFS2 performance traits the paper
// depends on (no client cache, bounded buffer pool, commit-on-fsync).
#include <gtest/gtest.h>

#include <memory>

#include "pvfs/client.hpp"
#include "pvfs/meta_server.hpp"
#include "pvfs/storage_server.hpp"
#include "sim/network.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace dpnfs::pvfs {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

TEST(PvfsProtocol, MapStripesRoundRobinDense) {
  FileMeta meta;
  meta.handle = 1;
  meta.stripe_unit = 100;
  meta.dfiles = {DfileRef{0, 10}, DfileRef{1, 11}, DfileRef{2, 12}};
  // 250 bytes from offset 0: stripes 0,1,2 -> dfiles 0,1,2.
  auto exts = map_stripes(meta, 0, 250);
  ASSERT_EQ(exts.size(), 3u);
  EXPECT_EQ(exts[0].dfile_index, 0u);
  EXPECT_EQ(exts[0].dfile_offset, 0u);
  EXPECT_EQ(exts[0].length, 100u);
  EXPECT_EQ(exts[2].dfile_index, 2u);
  EXPECT_EQ(exts[2].length, 50u);
  // Offset 350 (stripe 3 -> dfile 0, second stripe on it: dense offset 100).
  exts = map_stripes(meta, 350, 10);
  ASSERT_EQ(exts.size(), 1u);
  EXPECT_EQ(exts[0].dfile_index, 0u);
  EXPECT_EQ(exts[0].dfile_offset, 150u);
}

TEST(PvfsProtocol, LogicalSizeFromDfileSizes) {
  FileMeta meta;
  meta.stripe_unit = 100;
  meta.dfiles = {DfileRef{0, 1}, DfileRef{1, 2}, DfileRef{2, 3}};
  // Empty file.
  EXPECT_EQ(logical_size(meta, {0, 0, 0}), 0u);
  // 250 bytes: dfile0=100, dfile1=100, dfile2=50.
  EXPECT_EQ(logical_size(meta, {100, 100, 50}), 250u);
  // Exactly one stripe.
  EXPECT_EQ(logical_size(meta, {100, 0, 0}), 100u);
  // Sparse write at stripe 4 (dfile 1, dense offset 100..): dfile1=150.
  EXPECT_EQ(logical_size(meta, {0, 150, 0}), 450u);
}

TEST(PvfsProtocol, LogicalSizeInverseOfStriping) {
  // Property: writing [0, L) densely gives dfile sizes whose logical_size
  // is exactly L.
  util::Rng rng(11);
  FileMeta meta;
  meta.stripe_unit = 64;
  meta.dfiles = {DfileRef{0, 1}, DfileRef{1, 2}, DfileRef{2, 3}, DfileRef{3, 4}};
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t len = rng.range(1, 5000);
    std::vector<uint64_t> sizes(4, 0);
    for (const auto& ext : map_stripes(meta, 0, len)) {
      sizes[ext.dfile_index] =
          std::max(sizes[ext.dfile_index], ext.dfile_offset + ext.length);
    }
    ASSERT_EQ(logical_size(meta, sizes), len) << "len=" << len;
  }
}

struct PvfsCluster {
  static constexpr int kStorage = 3;
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};

  sim::Node* meta_node = nullptr;
  std::unique_ptr<PvfsMetaServer> meta;
  std::vector<std::unique_ptr<lfs::ObjectStore>> stores;
  std::vector<std::unique_ptr<PvfsStorageServer>> storage;
  sim::Node* cl_node = nullptr;
  std::unique_ptr<PvfsClient> client;

  explicit PvfsCluster(uint64_t stripe_unit = 1_MiB) {
    std::vector<rpc::RpcAddress> addrs;
    for (int i = 0; i < kStorage; ++i) {
      auto& node = net.add_node(sim::NodeParams{
          .name = "io" + std::to_string(i),
          .nic = sim::NicParams{.bytes_per_sec = 117e6, .latency = sim::us(60)},
          .disk = sim::DiskParams{.bytes_per_sec = 60e6},
          .cpu = sim::CpuParams{.cores = 2}});
      stores.push_back(std::make_unique<lfs::ObjectStore>(node));
      storage.push_back(std::make_unique<PvfsStorageServer>(
          fabric, node, rpc::kPvfsIoPort, *stores.back()));
      storage.back()->start();
      addrs.push_back(storage.back()->address());
    }
    // Metadata manager doubles on storage node 0 (paper setup).
    meta_node = &net.node(0);
    MetaServerConfig mcfg;
    mcfg.stripe_unit = stripe_unit;
    meta = std::make_unique<PvfsMetaServer>(fabric, *meta_node,
                                            rpc::kPvfsMetaPort, kStorage, mcfg);
    meta->start();
    cl_node = &net.add_node(sim::NodeParams{
        .name = "client",
        .nic = sim::NicParams{.bytes_per_sec = 117e6, .latency = sim::us(60)},
        .disk = std::nullopt,
        .cpu = sim::CpuParams{.cores = 2}});
    client = std::make_unique<PvfsClient>(fabric, *cl_node, meta->address(),
                                          addrs, "tester@SIM");
  }

  void run(Task<void> t) {
    sim.spawn(std::move(t));
    sim.run();
  }
};

TEST(PvfsEndToEnd, CreateWriteReadBack) {
  PvfsCluster f;
  f.run([](PvfsCluster& f) -> Task<void> {
    auto file = co_await f.client->create("/data");
    co_await f.client->write(file, 0, Payload::from_string("parallel bytes"));
    Payload p = co_await f.client->read(file, 0, 14);
    EXPECT_EQ(p, Payload::from_string("parallel bytes"));
    co_await f.client->close(file);
  }(f));
}

TEST(PvfsEndToEnd, DataStripedAcrossStorageNodes) {
  PvfsCluster f;
  f.run([](PvfsCluster& f) -> Task<void> {
    auto file = co_await f.client->create("/striped");
    co_await f.client->write(file, 0, Payload::virtual_bytes(6_MiB));
    co_await f.client->close(file);
  }(f));
  // 6 MiB over 3 nodes with 1 MiB stripes: 2 MiB per node.
  for (const auto& store : f.stores) {
    uint64_t total = 0;
    for (uint64_t oid = 0; oid < 1000; ++oid) {
      if (store->exists(oid)) total += store->size(oid);
    }
    EXPECT_EQ(total, 2_MiB);
  }
}

TEST(PvfsEndToEnd, ReopenGathersSizeFromStorage) {
  PvfsCluster f;
  f.run([](PvfsCluster& f) -> Task<void> {
    auto file = co_await f.client->create("/szfile");
    co_await f.client->write(file, 0, Payload::virtual_bytes(5_MiB + 123));
    co_await f.client->close(file);

    auto again = co_await f.client->open("/szfile");
    EXPECT_EQ(again->size, 5_MiB + 123);
    co_await f.client->close(again);
  }(f));
}

TEST(PvfsEndToEnd, CrossStripeContentIntegrity) {
  PvfsCluster f(64_KiB);
  f.run([](PvfsCluster& f) -> Task<void> {
    auto file = co_await f.client->create("/pattern");
    std::vector<std::byte> pattern(300 * 1024);
    for (size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = static_cast<std::byte>((i * 7) & 0xFF);
    }
    co_await f.client->write(file, 0, Payload::inline_bytes(pattern));
    Payload p = co_await f.client->read(file, 100 * 1024, 150 * 1024);
    EXPECT_TRUE(p.is_inline());
    EXPECT_EQ(p.size(), 150u * 1024);
    bool ok = true;
    for (size_t i = 0; i < p.size() && ok; ++i) {
      ok = p.data()[i] == static_cast<std::byte>(((100 * 1024 + i) * 7) & 0xFF);
    }
    EXPECT_TRUE(ok);
    co_await f.client->close(file);
  }(f));
}

TEST(PvfsEndToEnd, NamespaceOperations) {
  PvfsCluster f;
  f.run([](PvfsCluster& f) -> Task<void> {
    co_await f.client->mkdir("/d");
    auto file = co_await f.client->create("/d/f");
    co_await f.client->close(file);

    auto entries = co_await f.client->readdir("/d");
    EXPECT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].first, "f");
    EXPECT_FALSE(entries[0].second);

    co_await f.client->rename("/d/f", "/d/g");
    entries = co_await f.client->readdir("/d");
    EXPECT_EQ(entries[0].first, "g");

    bool exist = false;
    try {
      co_await f.client->mkdir("/d");
    } catch (const PvfsError& e) {
      exist = (e.status() == PvfsStatus::kExist);
    }
    EXPECT_TRUE(exist);
  }(f));
}

TEST(PvfsEndToEnd, RemoveReapsStorageObjects) {
  PvfsCluster f;
  f.run([](PvfsCluster& f) -> Task<void> {
    auto file = co_await f.client->create("/gone");
    co_await f.client->write(file, 0, Payload::virtual_bytes(3_MiB));
    co_await f.client->close(file);
    co_await f.client->remove("/gone");
  }(f));
  for (const auto& store : f.stores) {
    for (uint64_t oid = 0; oid < 1000; ++oid) {
      EXPECT_FALSE(store->exists(oid));
    }
  }
}

TEST(PvfsEndToEnd, NoClientCacheMeansEveryReadHitsWire) {
  PvfsCluster f;
  f.run([](PvfsCluster& f) -> Task<void> {
    auto file = co_await f.client->create("/nocache");
    co_await f.client->write(file, 0, Payload::virtual_bytes(64_KiB));
    const uint64_t before = f.client->stats().storage_requests;
    for (int i = 0; i < 10; ++i) {
      (void)co_await f.client->read(file, 0, 8_KiB);
    }
    // 10 identical reads: 10 storage requests (no cache).
    EXPECT_EQ(f.client->stats().storage_requests - before, 10u);
    co_await f.client->close(file);
  }(f));
}

TEST(PvfsEndToEnd, FsyncForcesDataToDisk) {
  PvfsCluster f;
  f.run([](PvfsCluster& f) -> Task<void> {
    auto file = co_await f.client->create("/durable");
    co_await f.client->write(file, 0, Payload::virtual_bytes(6_MiB));
    uint64_t dirty = 0;
    for (const auto& store : f.stores) dirty += store->dirty_bytes();
    EXPECT_EQ(dirty, 6_MiB);  // buffered on storage nodes
    co_await f.client->fsync(file);
    dirty = 0;
    for (const auto& store : f.stores) dirty += store->dirty_bytes();
    EXPECT_EQ(dirty, 0u);
    co_await f.client->close(file);
  }(f));
}

TEST(PvfsEndToEnd, TruncateShrinksLogicalSize) {
  PvfsCluster f;
  f.run([](PvfsCluster& f) -> Task<void> {
    auto file = co_await f.client->create("/trunc");
    co_await f.client->write(file, 0, Payload::virtual_bytes(4_MiB));
    co_await f.client->truncate(file, 2_MiB + 500);
    const uint64_t gathered = co_await f.client->fetch_size(file);
    EXPECT_EQ(gathered, 2_MiB + 500);
    co_await f.client->close(file);
  }(f));
}

TEST(PvfsEndToEnd, BufferPoolBoundsParallelism) {
  // With a 1-buffer pool, N requests serialize; with 8 they overlap.  The
  // serialized run must take ~N times the per-request floor.
  auto elapsed_with_buffers = [](uint32_t buffers) {
    PvfsCluster f;
    PvfsClientConfig cfg;
    cfg.buffer_count = buffers;
    f.client = std::make_unique<PvfsClient>(
        f.fabric, *f.cl_node, f.meta->address(),
        std::vector<rpc::RpcAddress>{f.storage[0]->address(),
                                     f.storage[1]->address(),
                                     f.storage[2]->address()},
        "tester@SIM", cfg);
    f.run([](PvfsCluster& f) -> Task<void> {
      auto file = co_await f.client->create("/par");
      co_await f.client->write(file, 0, Payload::virtual_bytes(24_MiB));
      co_await f.client->close(file);
    }(f));
    return f.sim.now();
  };
  const auto serial = elapsed_with_buffers(1);
  const auto parallel = elapsed_with_buffers(8);
  EXPECT_GT(serial, parallel);
}

}  // namespace
}  // namespace dpnfs::pvfs
