// Observability layer: registry registration/lookup, histogram bucketing,
// trace parent/child linkage across real RPC hops, JSON export, and the
// paper's re-routing effect (pNFS-2tier burns strictly more RPC hops per
// trace than Direct-pNFS) made directly observable.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "rpc/fabric.hpp"
#include "sim/network.hpp"
#include "util/obs.hpp"
#include "workload/ior.hpp"

namespace dpnfs {
namespace {

using obs::MetricsRegistry;
using obs::Span;
using obs::SpanKind;
using obs::TraceContext;
using obs::Tracer;
using sim::Task;

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CreateOrGetReturnsStableHandles) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  obs::Counter& c1 = reg.counter("storage0", "pvfs.io", "bytes_written");
  c1.add(100);
  // Creating unrelated metrics must not invalidate the first handle.
  for (int i = 0; i < 64; ++i) {
    reg.counter("node" + std::to_string(i), "rpc", "requests");
  }
  obs::Counter& c2 = reg.counter("storage0", "pvfs.io", "bytes_written");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 100u);
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("n", "c", "x"), nullptr);
  EXPECT_TRUE(reg.empty());
  reg.counter("n", "c", "x").add(7);
  const obs::Counter* found = reg.find_counter("n", "c", "x");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value(), 7u);
  EXPECT_EQ(reg.find_gauge("n", "c", "x"), nullptr);
  EXPECT_EQ(reg.find_histogram("n", "c", "x"), nullptr);
}

TEST(MetricsRegistry, NullSinksAbsorbUpdates) {
  obs::Counter& c = MetricsRegistry::null_counter();
  obs::Gauge& g = MetricsRegistry::null_gauge();
  obs::HistogramMetric& h = MetricsRegistry::null_histogram();
  c.inc();
  g.set(3.5);
  h.observe(12.0);  // must not throw; values are throwaway
  SUCCEED();
}

TEST(HistogramMetric, BucketingAndSummaryStats) {
  MetricsRegistry reg;
  obs::HistogramMetric& h =
      reg.histogram("n", "rpc", "service_us", {10.0, 100.0, 1000.0});
  for (double v : {5.0, 50.0, 500.0, 5000.0, 7.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 5562.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5000.0);
  // Buckets: [<10), [10,100), [100,1000), overflow.
  ASSERT_EQ(h.buckets().bucket_count(), 4u);
  EXPECT_DOUBLE_EQ(h.buckets().bucket_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(h.buckets().bucket_weight(1), 1.0);
  EXPECT_DOUBLE_EQ(h.buckets().bucket_weight(2), 1.0);
  EXPECT_DOUBLE_EQ(h.buckets().bucket_weight(3), 1.0);
}

TEST(MetricsRegistry, JsonExportCarriesValues) {
  MetricsRegistry reg;
  reg.counter("storage0", "pvfs.io", "bytes_written").add(4096);
  reg.gauge("storage0", "node", "nic_tx_bytes").set(12.5);
  reg.histogram("storage0", "rpc", "queue_us", {1.0, 10.0}).observe(3.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"storage0\""), std::string::npos);
  EXPECT_NE(json.find("\"pvfs.io\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_written\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"nic_tx_bytes\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [0, 1, 0]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Tracer, RootAndChildSpansShareOneTrace) {
  Tracer t;
  const TraceContext root = t.begin();
  ASSERT_TRUE(root.valid());
  const TraceContext child = t.begin(root);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_NE(child.span_id, root.span_id);
  const TraceContext other = t.begin();
  EXPECT_NE(other.trace_id, root.trace_id);
  EXPECT_EQ(t.traces_started(), 2u);
}

TEST(Tracer, HopAccountingCountsClientCallSpans) {
  Tracer t;
  const TraceContext a = t.begin();
  t.record(Span{a.trace_id, a.span_id, 0, SpanKind::kClientCall, "nfs/3", "c0",
                0, 10, 0, 100, 50});
  const TraceContext nested = t.begin(a);
  t.record(Span{nested.trace_id, nested.span_id, a.span_id,
                SpanKind::kClientCall, "pvfs.io/1", "ds0", 2, 8, 0, 90, 40});
  // Server/internal spans do not count as hops.
  t.record(Span{a.trace_id, 99, a.span_id, SpanKind::kServerExec, "nfs/3",
                "ds0", 1, 9, 1, 50, 100});
  EXPECT_EQ(t.rpc_hops_total(), 2u);
  EXPECT_DOUBLE_EQ(t.mean_hops_per_trace(), 2.0);
  EXPECT_EQ(t.max_hops_per_trace(), 2u);
  EXPECT_EQ(t.trace_spans(a.trace_id).size(), 3u);
  const auto hist = t.hops_histogram();
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist.at(2), 1u);
}

TEST(Tracer, DisabledTracerIsInert) {
  Tracer t;
  t.set_enabled(false);
  const TraceContext ctx = t.begin();
  EXPECT_FALSE(ctx.valid());
  t.record(Span{1, 2, 0, SpanKind::kClientCall, "x", "n", 0, 1, 0, 0, 0});
  EXPECT_EQ(t.spans_recorded(), 0u);
  EXPECT_EQ(t.rpc_hops_total(), 0u);
}

TEST(Tracer, SpanCapacityBoundsDetailNotAccounting) {
  Tracer t;
  t.set_span_capacity(2);
  for (int i = 0; i < 5; ++i) {
    const TraceContext c = t.begin();
    t.record(Span{c.trace_id, c.span_id, 0, SpanKind::kClientCall, "x", "n", 0,
                  1, 0, 0, 0});
  }
  EXPECT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans_dropped(), 3u);
  EXPECT_EQ(t.spans_recorded(), 5u);
  EXPECT_EQ(t.rpc_hops_total(), 5u);  // hop counts stay exact
}

TEST(Tracer, JsonExports) {
  Tracer t;
  const TraceContext c = t.begin();
  t.record(Span{c.trace_id, c.span_id, 0, SpanKind::kClientCall, "nfs/1",
                "client0", 5, 25, 0, 128, 64});
  const std::string agg = t.to_json();
  EXPECT_NE(agg.find("\"traces_started\": 1"), std::string::npos);
  EXPECT_NE(agg.find("\"rpc_hops_total\": 1"), std::string::npos);
  EXPECT_NE(agg.find("\"hops_histogram\": {\"1\": 1}"), std::string::npos);
  const std::string detail = t.spans_json(10);
  EXPECT_NE(detail.find("\"name\": \"nfs/1\""), std::string::npos);
  EXPECT_NE(detail.find("\"kind\": \"client\""), std::string::npos);
  EXPECT_NE(detail.find("\"bytes_out\": 128"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace propagation across real RPC hops
// ---------------------------------------------------------------------------

struct RpcFixture {
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  MetricsRegistry metrics;
  Tracer tracer;

  RpcFixture() { fabric.set_observability(&metrics, &tracer); }

  sim::Node& add_node(const std::string& name) {
    return net.add_node(sim::NodeParams{
        .name = name,
        .nic = sim::NicParams{.bytes_per_sec = 100e6, .latency = sim::us(10)},
        .disk = std::nullopt,
        .cpu = sim::CpuParams{.cores = 2}});
  }
};

TEST(TracePropagation, ServerSpanIsChildOfClientSpan) {
  RpcFixture f;
  auto& client_node = f.add_node("client");
  auto& server_node = f.add_node("server");
  rpc::RpcServer server(f.fabric, server_node, rpc::kNfsPort, 2,
                        [](const rpc::CallContext& ctx, rpc::XdrDecoder&,
                           rpc::XdrEncoder& out) -> Task<void> {
                          EXPECT_TRUE(ctx.trace.valid());
                          out.put_u32(0);
                          co_return;
                        });
  server.start();
  rpc::RpcClient client(f.fabric, client_node, "t@SIM");
  f.sim.spawn([](rpc::RpcClient& c, rpc::RpcAddress to) -> Task<void> {
    auto reply = co_await c.call(to, rpc::Program::kNfs, 4, 3,
                                 rpc::XdrEncoder{});
    EXPECT_EQ(reply.status, rpc::ReplyStatus::kAccepted);
  }(client, server.address()));
  f.sim.run();

  ASSERT_EQ(f.tracer.spans().size(), 2u);
  const Span* client_span = nullptr;
  const Span* server_span = nullptr;
  for (const Span& s : f.tracer.spans()) {
    if (s.kind == SpanKind::kClientCall) client_span = &s;
    if (s.kind == SpanKind::kServerExec) server_span = &s;
  }
  ASSERT_NE(client_span, nullptr);
  ASSERT_NE(server_span, nullptr);
  EXPECT_EQ(server_span->trace_id, client_span->trace_id);
  EXPECT_EQ(server_span->parent_span_id, client_span->span_id);
  EXPECT_EQ(client_span->node, "client");
  EXPECT_EQ(server_span->node, "server");
  EXPECT_EQ(client_span->name, "nfs/3");
  // Client sees the hop end-to-end; the server span nests inside it.
  EXPECT_LE(client_span->start, server_span->start);
  EXPECT_GE(client_span->end, server_span->end);
  EXPECT_EQ(f.tracer.rpc_hops_total(), 1u);

  // Per-node RPC metrics landed on the server's node.
  const obs::Counter* reqs = f.metrics.find_counter("server", "rpc",
                                                    "requests");
  ASSERT_NE(reqs, nullptr);
  EXPECT_EQ(reqs->value(), 1u);
  const obs::HistogramMetric* svc =
      f.metrics.find_histogram("server", "rpc", "service_us");
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->count(), 1u);
}

TEST(TracePropagation, ProxiedCallAddsSecondHopToSameTrace) {
  // The 2-tier shape in miniature: client -> proxy -> backend.  The proxy
  // forwards its CallContext trace, so both hops land in one trace.
  RpcFixture f;
  auto& client_node = f.add_node("client");
  auto& proxy_node = f.add_node("proxy");
  auto& backend_node = f.add_node("backend");

  rpc::RpcServer backend(f.fabric, backend_node, rpc::kPvfsIoPort, 2,
                         [](const rpc::CallContext&, rpc::XdrDecoder&,
                            rpc::XdrEncoder& out) -> Task<void> {
                           out.put_u32(0);
                           co_return;
                         });
  backend.start();

  auto proxy_client =
      std::make_unique<rpc::RpcClient>(f.fabric, proxy_node, "proxy@SIM");
  rpc::RpcClient* proxy_rpc = proxy_client.get();
  const rpc::RpcAddress backend_addr = backend.address();
  rpc::RpcServer proxy(
      f.fabric, proxy_node, rpc::kNfsPort, 2,
      [proxy_rpc, backend_addr](const rpc::CallContext& ctx, rpc::XdrDecoder&,
                                rpc::XdrEncoder& out) -> Task<void> {
        auto nested = co_await proxy_rpc->call(
            backend_addr, rpc::Program::kPvfsIo, 1, 0, rpc::XdrEncoder{},
            rpc::CallOptions{.parent = ctx.trace});
        EXPECT_EQ(nested.status, rpc::ReplyStatus::kAccepted);
        out.put_u32(0);
      });
  proxy.start();

  rpc::RpcClient client(f.fabric, client_node, "t@SIM");
  f.sim.spawn([](rpc::RpcClient& c, rpc::RpcAddress to) -> Task<void> {
    auto reply = co_await c.call(to, rpc::Program::kNfs, 4, 1,
                                 rpc::XdrEncoder{});
    EXPECT_EQ(reply.status, rpc::ReplyStatus::kAccepted);
  }(client, proxy.address()));
  f.sim.run();

  EXPECT_EQ(f.tracer.traces_started(), 1u);
  EXPECT_EQ(f.tracer.rpc_hops_total(), 2u);
  EXPECT_EQ(f.tracer.max_hops_per_trace(), 2u);
  // The nested hop's parent is the proxy's server span, which itself is a
  // child of the client's hop: a 4-span chain in one trace.
  ASSERT_EQ(f.tracer.spans().size(), 4u);
  const uint64_t trace_id = f.tracer.spans().front().trace_id;
  for (const Span& s : f.tracer.spans()) EXPECT_EQ(s.trace_id, trace_id);
}

// ---------------------------------------------------------------------------
// Deployment-level: the paper's re-routing effect
// ---------------------------------------------------------------------------

double mean_hops_for(core::Architecture arch) {
  core::ClusterConfig cfg;
  cfg.architecture = arch;
  cfg.storage_nodes = 3;
  cfg.clients = 2;
  core::Deployment d(cfg);
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 8ull << 20;
  workload::IorWorkload w(ior);
  workload::run_workload(d, w);
  EXPECT_GT(d.tracer().rpc_hops_total(), 0u);
  return d.tracer().mean_hops_per_trace();
}

TEST(Deployment, TwoTierReroutingCostsStrictlyMoreHopsThanDirect) {
  // Direct-pNFS serves each stripe from the node that holds it (1 hop);
  // the 2-tier data server re-routes through its PVFS client (>= 2 hops).
  const double direct = mean_hops_for(core::Architecture::kDirectPnfs);
  const double two_tier = mean_hops_for(core::Architecture::kPnfs2Tier);
  EXPECT_GT(two_tier, direct);
}

TEST(Deployment, MetricsJsonCarriesPerStorageNodeBytes) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 3;
  cfg.clients = 1;
  core::Deployment d(cfg);
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 12ull << 20;  // 2 MB stripes over 3 nodes: all hit
  workload::IorWorkload w(ior);
  const workload::RunResult r = workload::run_workload(d, w);
  EXPECT_FALSE(r.metrics_json.empty());
  EXPECT_NE(r.metrics_json.find("\"architecture\":\"Direct-pNFS\""),
            std::string::npos);
  // Every storage node reports its resource gauges in the export.
  for (const char* node : {"storage0", "storage1", "storage2"}) {
    EXPECT_NE(r.metrics_json.find(std::string("\"") + node + "\""),
              std::string::npos);
  }
  EXPECT_NE(r.metrics_json.find("\"disk_write_bytes\""), std::string::npos);
  // And the snapshot gauges saw the bytes the data path moved, even though
  // Direct-pNFS bypasses the PVFS I/O daemons.
  for (const char* node : {"storage0", "storage1", "storage2"}) {
    const obs::Gauge* g = d.metrics().find_gauge(node, "node",
                                                 "disk_write_bytes");
    ASSERT_NE(g, nullptr) << node;
    EXPECT_GT(g->value(), 0.0) << node;
  }
}

}  // namespace
}  // namespace dpnfs
