// Assorted edge-path tests: RPC server drain, NIC accounting, odd cluster
// shapes, store helpers, and client corner cases.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "lfs/object_store.hpp"
#include "rpc/fabric.hpp"
#include "sim/network.hpp"
#include "util/bytes.hpp"
#include "workload/ior.hpp"
#include "workload/runner.hpp"

namespace dpnfs {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

TEST(NicAccounting, TransfersAreCountedAtBothEnds) {
  sim::Simulation sim;
  sim::Network net{sim};
  auto& a = net.add_node({.name = "a", .nic = {}, .disk = std::nullopt, .cpu = {}});
  auto& b = net.add_node({.name = "b", .nic = {}, .disk = std::nullopt, .cpu = {}});
  sim.spawn([](sim::Network& net, sim::Node& a, sim::Node& b) -> Task<void> {
    co_await net.transfer(a, b, 1'000'000);
    co_await net.transfer(b, a, 250'000);
  }(net, a, b));
  sim.run();
  EXPECT_EQ(a.nic().tx_bytes(), 1'000'000u);
  EXPECT_EQ(a.nic().rx_bytes(), 250'000u);
  EXPECT_EQ(b.nic().rx_bytes(), 1'000'000u);
  EXPECT_EQ(b.nic().tx_bytes(), 250'000u);
}

TEST(NicAccounting, LoopbackDoesNotTouchNics) {
  sim::Simulation sim;
  sim::Network net{sim};
  auto& a = net.add_node({.name = "a", .nic = {}, .disk = std::nullopt, .cpu = {}});
  sim.spawn([](sim::Network& net, sim::Node& a) -> Task<void> {
    co_await net.transfer(a, a, 10'000'000);
  }(net, a));
  sim.run();
  EXPECT_EQ(a.nic().tx_bytes(), 0u);
  EXPECT_EQ(a.nic().rx_bytes(), 0u);
}

TEST(RpcServerDrain, StopLetsQueuedWorkFinish) {
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  auto& sn = net.add_node({.name = "s", .nic = {}, .disk = std::nullopt, .cpu = {}});
  auto& cn = net.add_node({.name = "c", .nic = {}, .disk = std::nullopt, .cpu = {}});
  int served = 0;
  rpc::RpcServer server(
      fabric, sn, 9000, 1,
      [&sim, &served](const rpc::CallContext&, rpc::XdrDecoder&,
                      rpc::XdrEncoder&) -> Task<void> {
        co_await sim.delay(sim::ms(5));
        ++served;
      });
  server.start();
  rpc::RpcClient client(fabric, cn, "t@SIM");
  int replies = 0;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](rpc::RpcClient& c, rpc::RpcAddress to, int& replies) -> Task<void> {
      auto r = co_await c.call(to, rpc::Program::kNfs, 4, 1, rpc::XdrEncoder{});
      if (r.status == rpc::ReplyStatus::kAccepted) ++replies;
    }(client, server.address(), replies));
  }
  // Stop after the first request lands; the rest must still drain.
  sim.spawn([](sim::Simulation& sim, rpc::RpcServer& server) -> Task<void> {
    co_await sim.delay(sim::ms(1));
    server.stop();
  }(sim, server));
  sim.run();
  EXPECT_EQ(served, 4);
  EXPECT_EQ(replies, 4);
}

TEST(DeploymentShapes, OddStorageCountsWork) {
  for (uint32_t nodes : {2u, 3u, 5u, 7u}) {
    core::ClusterConfig cfg;
    cfg.architecture = core::Architecture::kDirectPnfs;
    cfg.storage_nodes = nodes;
    cfg.clients = 2;
    core::Deployment d(cfg);
    workload::IorConfig ior;
    ior.bytes_per_client = 4_MiB;
    workload::IorWorkload w(ior);
    const auto r = run_workload(d, w);
    EXPECT_EQ(r.app_bytes, 8_MiB) << nodes << " nodes";
  }
}

TEST(DeploymentShapes, SingleStorageNodeDegenerateCase) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kNativePvfs;
  cfg.storage_nodes = 1;
  cfg.clients = 2;
  core::Deployment d(cfg);
  workload::IorConfig ior;
  ior.bytes_per_client = 4_MiB;
  workload::IorWorkload w(ior);
  EXPECT_EQ(run_workload(d, w).app_bytes, 8_MiB);
}

TEST(ObjectStoreHelpers, WarmAndDropCachesControlDiskReads) {
  sim::Simulation sim;
  sim::Network net{sim};
  auto& node = net.add_node({.name = "s",
                             .nic = {},
                             .disk = sim::DiskParams{},
                             .cpu = {}});
  lfs::ObjectStore store(node);
  sim.spawn([](lfs::ObjectStore& s) -> Task<void> {
    co_await s.write(1, 0, Payload::virtual_bytes(8_MiB), true);
    s.drop_caches();
    s.warm(1);  // mark resident without I/O
    (void)co_await s.read(1, 0, 8_MiB);
  }(store));
  sim.run();
  EXPECT_EQ(store.stats().disk_reads, 0u);  // warm() made the read free
}

TEST(ClientEdge, ZeroLengthIoIsFreeAndSafe) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 1;
  core::Deployment d(cfg);
  bool done = false;
  d.simulation().spawn([](core::Deployment& d, bool& done) -> Task<void> {
    co_await d.mount_all();
    auto f = co_await d.client(0).open("/z", true);
    co_await f->write(0, Payload{});
    Payload p = co_await f->read(0, 0);
    EXPECT_EQ(p.size(), 0u);
    p = co_await f->read(12345, 100);  // beyond EOF
    EXPECT_EQ(p.size(), 0u);
    co_await f->close();
    done = true;
  }(d, done));
  d.simulation().run();
  EXPECT_TRUE(done);
}

TEST(ClientEdge, ManySmallFilesDoNotExplodeClientState) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 1;
  cfg.nfs_client.cache_limit_bytes = 2_MiB;  // force eviction churn
  core::Deployment d(cfg);
  bool done = false;
  d.simulation().spawn([](core::Deployment& d, bool& done) -> Task<void> {
    co_await d.mount_all();
    for (int i = 0; i < 200; ++i) {
      auto f = co_await d.client(0).open("/small" + std::to_string(i), true);
      co_await f->write(0, Payload::virtual_bytes(64_KiB));
      co_await f->close();
    }
    // Read a sample back.
    for (int i = 0; i < 200; i += 37) {
      auto f = co_await d.client(0).open("/small" + std::to_string(i), false);
      Payload p = co_await f->read(0, 64_KiB);
      EXPECT_EQ(p.size(), 64_KiB);
      co_await f->close();
    }
    done = true;
  }(d, done));
  d.simulation().run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace dpnfs
