#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dpnfs::util {
namespace {

using namespace dpnfs::util::literals;

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, EmptyPercentileIsZero) {
  // Pin the empty-case guard: no sample means 0, never an empty index.
  Summary s;
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
}

TEST(Histogram, EmptyCumulativeFractionIsZero) {
  // Pin the empty-case guard: zero total weight never divides by zero.
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction_below(3.0), 0.0);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction_below(100.0), 0.0);
}

TEST(Summary, MeanMinMax) {
  Summary s;
  for (double v : {4.0, 1.0, 7.0, 2.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.sum(), 14.0);
}

TEST(Summary, PercentileNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Summary, PercentileOutOfRangeThrows) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(Summary, StddevOfConstantIsZero) {
  Summary s;
  for (int i = 0; i < 10; ++i) s.add(5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, PercentileInterleavedWithAdd) {
  Summary s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.0);
  s.add(9.0);  // must re-sort internally
  EXPECT_DOUBLE_EQ(s.percentile(100), 9.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h({10.0, 100.0});
  h.add(5.0);
  h.add(10.0);   // [10, 100)
  h.add(50.0);
  h.add(1000.0);  // overflow
  EXPECT_EQ(h.bucket_count(), 3u);
  EXPECT_DOUBLE_EQ(h.bucket_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(2), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
}

TEST(Histogram, CumulativeFraction) {
  Histogram h({10.0, 100.0, 1000.0});
  for (int i = 0; i < 95; ++i) h.add(5.0);
  for (int i = 0; i < 5; ++i) h.add(500.0);
  EXPECT_NEAR(h.cumulative_fraction_below(5.0), 0.95, 1e-9);
  EXPECT_NEAR(h.cumulative_fraction_below(500.0), 1.0, 1e-9);
}

TEST(Histogram, RejectsBadBoundaries) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Bytes, Literals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(Bytes, Format) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.0 MiB");
}

TEST(Bytes, ToMbps) {
  EXPECT_DOUBLE_EQ(to_mbps(100e6, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(to_mbps(100e6, 0.0), 0.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(42);
  Rng f1 = a.fork(1);
  Rng a2(42);
  Rng f2 = a2.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next() == f2.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, RangeIsInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = r.range(3, 5);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace dpnfs::util
