// Traffic-accounting tests: the defining network signature of each
// architecture, measured at the NICs — the mechanism behind Figures 3
// and 6c.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "util/bytes.hpp"
#include "workload/ior.hpp"
#include "workload/runner.hpp"

namespace dpnfs::core {
namespace {

using namespace dpnfs::util::literals;

struct Traffic {
  uint64_t server_tx;
  uint64_t server_rx;
};

Traffic write_traffic(Architecture arch) {
  ClusterConfig cfg;
  cfg.architecture = arch;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  Deployment d(cfg);
  workload::IorConfig ior;
  ior.bytes_per_client = 16_MiB;
  workload::IorWorkload w(ior);
  (void)run_workload(d, w);
  return Traffic{d.server_tx_bytes(), d.server_rx_bytes()};
}

TEST(Traffic, DirectPnfsServersDoNotForwardWrites) {
  // Exact layouts: data goes client -> owning server, full stop.  Server
  // transmissions are only replies and metadata.
  const Traffic t = write_traffic(Architecture::kDirectPnfs);
  EXPECT_GE(t.server_rx, 32_MiB);         // the data arrived
  EXPECT_LT(t.server_tx, 4_MiB);          // replies/metadata only
}

TEST(Traffic, TwoTierServersForwardMostWrites) {
  // Placement-oblivious layouts: a data server owns ~1/4 of what it
  // receives and forwards the rest to the right storage node (Figure 3b).
  const Traffic t = write_traffic(Architecture::kPnfs2Tier);
  EXPECT_GT(t.server_tx, 16_MiB);  // substantial re-transmission
  // And the receive side carries the data twice (client + forwarded).
  EXPECT_GT(t.server_rx, 48_MiB);
}

TEST(Traffic, PlainNfsFunnelsEverythingThroughOneBox) {
  ClusterConfig cfg;
  cfg.architecture = Architecture::kPlainNfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  Deployment d(cfg);
  workload::IorConfig ior;
  ior.bytes_per_client = 16_MiB;
  workload::IorWorkload w(ior);
  (void)run_workload(d, w);
  // The storage nodes received all the data -- but from the NFS server box,
  // which itself received it from the clients (storage nodes' rx ~= data).
  EXPECT_GE(d.server_rx_bytes(), 32_MiB);
}

TEST(Traffic, ReadsComeFromOwningServersUnderDirect) {
  ClusterConfig cfg;
  cfg.architecture = Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  Deployment d(cfg);
  workload::IorConfig ior;
  ior.write = false;
  ior.bytes_per_client = 16_MiB;
  workload::IorWorkload w(ior);
  (void)run_workload(d, w);
  // Reads: servers transmit the data once to clients; pre-write phase also
  // received it once.  tx ~= rx ~= 32 MiB each, no amplification.
  EXPECT_GE(d.server_tx_bytes(), 32_MiB);
  EXPECT_LT(d.server_tx_bytes(), 44_MiB);
}

}  // namespace
}  // namespace dpnfs::core
