// NFS client cache semantics: close-to-open revalidation, page-cache
// retention, drop_caches, eviction, and the write-back/commit protocol
// details visible on the wire.
#include <gtest/gtest.h>

#include <memory>

#include "lfs/object_store.hpp"
#include "nfs/client.hpp"
#include "nfs/local_backend.hpp"
#include "nfs/server.hpp"
#include "rpc/fabric.hpp"
#include "sim/network.hpp"
#include "util/bytes.hpp"

namespace dpnfs::nfs {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

struct Rig {
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  sim::Node& server_node = net.add_node(sim::NodeParams{
      .name = "server",
      .nic = sim::NicParams{},
      .disk = sim::DiskParams{},
      .cpu = sim::CpuParams{}});
  sim::Node& client_node = net.add_node(sim::NodeParams{
      .name = "client",
      .nic = sim::NicParams{},
      .disk = std::nullopt,
      .cpu = sim::CpuParams{}});
  lfs::ObjectStore store{server_node};
  LocalBackend backend{store};
  NfsServer server{fabric, server_node, rpc::kNfsPort, backend};
  std::unique_ptr<NfsClient> client;

  explicit Rig(ClientConfig cfg = {}) {
    cfg.pnfs_enabled = false;
    server.start();
    client = std::make_unique<NfsClient>(fabric, client_node, server.address(),
                                         "t@SIM", cfg);
  }

  void run(Task<void> t) {
    sim.spawn(std::move(t));
    sim.run();
  }
};

TEST(ClientCache, ReadsAfterReopenServedFromCache) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 0, Payload::virtual_bytes(4_MiB));
    co_await r.client->close(f);

    const uint64_t wire_before = r.client->stats().wire_read_bytes;
    auto g = co_await r.client->open("/f", false);
    (void)co_await r.client->read(g, 0, 4_MiB);
    co_await r.client->close(g);
    // Unchanged file: the data written through this client's cache is
    // still valid — nothing crosses the wire.
    EXPECT_EQ(r.client->stats().wire_read_bytes, wire_before);
  }(r));
}

TEST(ClientCache, ExternalChangeInvalidatesOnReopen) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 0, Payload::from_string("old content"));
    co_await r.client->close(f);

    // A second client modifies the file behind our back.
    NfsClient other(r.fabric, r.client_node, r.server.address(), "o@SIM",
                    ClientConfig{.pnfs_enabled = false});
    co_await other.mount();
    auto h = co_await other.open("/f", false);
    co_await other.write(h, 0, Payload::from_string("NEW CONTENT"));
    co_await other.close(h);

    auto g = co_await r.client->open("/f", false);
    Payload p = co_await r.client->read(g, 0, 11);
    EXPECT_EQ(p, Payload::from_string("NEW CONTENT"));
    co_await r.client->close(g);
  }(r));
}

TEST(ClientCache, DropCachesForcesRefetch) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 0, Payload::virtual_bytes(2_MiB));
    co_await r.client->close(f);
    r.client->drop_caches();

    const uint64_t wire_before = r.client->stats().wire_read_bytes;
    auto g = co_await r.client->open("/f", false);
    (void)co_await r.client->read(g, 0, 2_MiB);
    co_await r.client->close(g);
    EXPECT_EQ(r.client->stats().wire_read_bytes - wire_before, 2_MiB);
  }(r));
}

TEST(ClientCache, EvictionKeepsWorkingUnderTinyBudget) {
  ClientConfig cfg;
  cfg.cache_limit_bytes = 4_MiB;
  Rig r(cfg);
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/big", true);
    co_await r.client->write(f, 0, Payload::virtual_bytes(32_MiB));
    co_await r.client->fsync(f);
    // Sequential re-read far beyond the cache budget must still succeed.
    for (uint64_t off = 0; off < 32_MiB; off += 1_MiB) {
      Payload p = co_await r.client->read(f, off, 1_MiB);
      EXPECT_EQ(p.size(), 1_MiB);
    }
    co_await r.client->close(f);
  }(r));
  EXPECT_GT(r.client->stats().wire_read_bytes, 0u);  // misses happened
}

TEST(ClientCache, CommitOnlyGoesToWrittenTargets) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 0, Payload::virtual_bytes(64_KiB));
    const uint64_t rpcs_before = r.client->stats().rpcs;
    co_await r.client->fsync(f);
    const uint64_t fsync_rpcs = r.client->stats().rpcs - rpcs_before;
    // One WRITE + one COMMIT (no layout => no LAYOUTCOMMIT).
    EXPECT_EQ(fsync_rpcs, 2u);
    // A second fsync with nothing dirty is free.
    const uint64_t rpcs_mid = r.client->stats().rpcs;
    co_await r.client->fsync(f);
    EXPECT_EQ(r.client->stats().rpcs, rpcs_mid);
    co_await r.client->close(f);
  }(r));
}

TEST(ClientCache, UncachedReadsBypassCacheEveryTime) {
  ClientConfig cfg;
  cfg.data_cache = false;
  Rig r(cfg);
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    co_await r.client->write(f, 0, Payload::virtual_bytes(64_KiB));
    co_await r.client->fsync(f);
    const uint64_t before = r.client->stats().wire_read_bytes;
    for (int i = 0; i < 5; ++i) {
      (void)co_await r.client->read(f, 0, 8_KiB);
    }
    EXPECT_EQ(r.client->stats().wire_read_bytes - before, 5 * 8_KiB);
    co_await r.client->close(f);
  }(r));
}

TEST(ClientCache, RandomSmallReadsFetchPagesNotRsize) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/db", true);
    co_await r.client->write(f, 0, Payload::virtual_bytes(64_MiB));
    co_await r.client->fsync(f);
    co_await r.client->close(f);
    r.client->drop_caches();

    auto g = co_await r.client->open("/db", false);
    const uint64_t before = r.client->stats().wire_read_bytes;
    // Random-ish (non-sequential) 8 KB reads must not drag 2 MB each.
    const uint64_t offs[] = {40_MiB, 8_MiB, 56_MiB, 24_MiB, 16_MiB};
    for (uint64_t off : offs) {
      (void)co_await r.client->read(g, off, 8_KiB);
    }
    const uint64_t fetched = r.client->stats().wire_read_bytes - before;
    EXPECT_LE(fetched, 5 * 64_KiB);  // page-granular + no readahead
    co_await r.client->close(g);
  }(r));
}

TEST(ClientCache, WritebackWindowBoundsDoesNotLoseData) {
  ClientConfig cfg;
  cfg.wb_window_per_ds = 1;  // fully serialized per-DS pipelines
  Rig r(cfg);
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    auto f = co_await r.client->open("/f", true);
    std::vector<std::byte> pattern(5 * 1024 * 1024);
    for (size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = static_cast<std::byte>((i / 1021) & 0xFF);
    }
    co_await r.client->write(f, 0, Payload::inline_bytes(pattern));
    co_await r.client->close(f);
    r.client->drop_caches();

    auto g = co_await r.client->open("/f", false);
    Payload p = co_await r.client->read(g, 0, pattern.size());
    EXPECT_EQ(p, Payload::inline_bytes(pattern));
    co_await r.client->close(g);
  }(r));
}

TEST(ClientCache, DentryCacheAvoidsRepeatedLookups) {
  Rig r;
  r.run([](Rig& r) -> Task<void> {
    co_await r.client->mount();
    co_await r.client->mkdir("/a");
    co_await r.client->mkdir("/a/b");
    auto f = co_await r.client->open("/a/b/file", true);
    co_await r.client->close(f);
    const uint64_t before = r.client->stats().rpcs;
    for (int i = 0; i < 10; ++i) {
      (void)co_await r.client->stat("/a/b/file");
    }
    // 10 stats over a cached dentry: 10 GETATTR compounds, no LOOKUP walks.
    EXPECT_EQ(r.client->stats().rpcs - before, 10u);
  }(r));
}

}  // namespace
}  // namespace dpnfs::nfs
