// Paper-shape regression tests: the qualitative results of the evaluation,
// asserted at reduced scale so the full figure benches can't silently
// regress.  Each test encodes one sentence of §6.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "workload/atlas.hpp"
#include "workload/ior.hpp"
#include "workload/oltp.hpp"
#include "workload/runner.hpp"

namespace dpnfs {
namespace {

using core::Architecture;
using core::ClusterConfig;
using core::Deployment;

double ior_mbps(Architecture arch, bool write, uint64_t block, uint32_t clients,
                bool single_file = false, double nic_bps = 117e6) {
  ClusterConfig cfg;
  cfg.architecture = arch;
  cfg.clients = clients;
  cfg.nic.bytes_per_sec = nic_bps;
  Deployment d(cfg);
  workload::IorConfig ior;
  ior.write = write;
  ior.single_file = single_file;
  ior.block_size = block;
  ior.bytes_per_client = 60'000'000;
  workload::IorWorkload w(ior);
  return run_workload(d, w).aggregate_mbps();
}

constexpr uint64_t k2MB = 2 << 20;
constexpr uint64_t k8KB = 8 * 1024;

TEST(PaperShapes, DirectMatchesPvfs2OnLargeWrites) {
  // §6.2: "Direct-pNFS matches the performance of PVFS2" (large writes).
  const double direct = ior_mbps(Architecture::kDirectPnfs, true, k2MB, 6);
  const double pvfs = ior_mbps(Architecture::kNativePvfs, true, k2MB, 6);
  EXPECT_GT(direct, 0.75 * pvfs);
  EXPECT_GT(pvfs, 0.6 * direct);
}

TEST(PaperShapes, SmallBlocksDoNotHurtDirectButCrushPvfs2) {
  // §6.2: NFSv4-based architectures are unaffected by 8 KB blocks thanks to
  // the write-back cache; PVFS2 collapses.
  const double direct_large = ior_mbps(Architecture::kDirectPnfs, true, k2MB, 4);
  const double direct_small = ior_mbps(Architecture::kDirectPnfs, true, k8KB, 4);
  EXPECT_GT(direct_small, 0.85 * direct_large);

  const double pvfs_large = ior_mbps(Architecture::kNativePvfs, true, k2MB, 4);
  const double pvfs_small = ior_mbps(Architecture::kNativePvfs, true, k8KB, 4);
  EXPECT_LT(pvfs_small, 0.5 * pvfs_large);
}

TEST(PaperShapes, TwoTierLosesHalfOnSlowNetwork) {
  // §6.2 / Fig 6c: inter-server transfers halve pNFS-2tier on 100 Mbps.
  const double direct =
      ior_mbps(Architecture::kDirectPnfs, true, k2MB, 4, false, 11.5e6);
  const double two_tier =
      ior_mbps(Architecture::kPnfs2Tier, true, k2MB, 4, false, 11.5e6);
  EXPECT_LT(two_tier, 0.65 * direct);
}

TEST(PaperShapes, NfsV4IsBoundByOneServer) {
  // §6.2: "NFSv4 aggregate performance is flat, limited to ... a single
  // server": going 2 -> 6 clients gains little.
  const double at2 = ior_mbps(Architecture::kPlainNfs, false, k2MB, 2);
  const double at6 = ior_mbps(Architecture::kPlainNfs, false, k2MB, 6);
  EXPECT_LT(at6, 1.4 * at2);
  // While Direct-pNFS keeps scaling.
  const double d2 = ior_mbps(Architecture::kDirectPnfs, false, k2MB, 2);
  const double d6 = ior_mbps(Architecture::kDirectPnfs, false, k2MB, 6);
  EXPECT_GT(d6, 2.2 * d2);
}

TEST(PaperShapes, WarmCacheReadsScaleWithClients) {
  // §6.2.1: reads come from server caches; clients are the limit, so
  // aggregate grows ~linearly with client count for Direct-pNFS.
  const double d1 = ior_mbps(Architecture::kDirectPnfs, false, k2MB, 1);
  const double d4 = ior_mbps(Architecture::kDirectPnfs, false, k2MB, 4);
  EXPECT_GT(d4, 3.0 * d1);
}

TEST(PaperShapes, AtlasMixFavorsDirect) {
  // §6.3.1: the mixed small/large ATLAS writes hurt PVFS2 far more.
  auto run = [](Architecture arch) {
    ClusterConfig cfg;
    cfg.architecture = arch;
    cfg.clients = 4;
    Deployment d(cfg);
    workload::AtlasConfig acfg;
    acfg.bytes_per_client = 400'000'000;
    acfg.file_span = 400'000'000;
    workload::AtlasWorkload w(acfg);
    return run_workload(d, w).aggregate_mbps();
  };
  EXPECT_GT(run(Architecture::kDirectPnfs), 1.2 * run(Architecture::kNativePvfs));
}

TEST(PaperShapes, OltpFavorsDirect) {
  // §6.4.1: Direct-pNFS beats PVFS2 substantially on 8 KB RMW + fsync.
  auto run = [](Architecture arch) {
    ClusterConfig cfg;
    cfg.architecture = arch;
    cfg.clients = 4;
    Deployment d(cfg);
    workload::OltpConfig ocfg;
    ocfg.file_bytes = 128ull << 20;
    ocfg.transactions_per_client = 500;
    workload::OltpWorkload w(ocfg);
    return run_workload(d, w).tps();
  };
  EXPECT_GT(run(Architecture::kDirectPnfs), 2.0 * run(Architecture::kNativePvfs));
}

}  // namespace
}  // namespace dpnfs
