// Trace parser and replay tests.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "workload/trace.hpp"

namespace dpnfs::workload {
namespace {

using core::Architecture;
using core::ClusterConfig;
using core::Deployment;

TEST(TraceParser, ParsesAllOps) {
  const std::string text = R"(# a comment
0 mkdir /data
0 open /data/f
0 write /data/f 0 4096
1 write /data/g 8192 1024
0 read /data/f 0 4096
0 fsync /data/f
0 close /data/f
)";
  const auto records = parse_trace(text);
  ASSERT_EQ(records.size(), 7u);
  EXPECT_EQ(records[0].op, TraceRecord::Op::kMkdir);
  EXPECT_EQ(records[0].path, "/data");
  EXPECT_EQ(records[2].op, TraceRecord::Op::kWrite);
  EXPECT_EQ(records[2].offset, 0u);
  EXPECT_EQ(records[2].length, 4096u);
  EXPECT_EQ(records[3].client, 1u);
  EXPECT_EQ(records[3].offset, 8192u);
  EXPECT_EQ(records[6].op, TraceRecord::Op::kClose);
}

TEST(TraceParser, RejectsMalformedLines) {
  EXPECT_THROW(parse_trace("0 frobnicate /x\n"), std::invalid_argument);
  EXPECT_THROW(parse_trace("0 write /x\n"), std::invalid_argument);  // no range
  EXPECT_THROW(parse_trace("not-a-number write /x 0 1\n"),
               std::invalid_argument);
}

TEST(TraceParser, SkipsCommentsAndBlankLines) {
  EXPECT_TRUE(parse_trace("# only comments\n\n# more\n").empty());
}

TEST(TraceReplay, ReplaysAgainstDeployment) {
  ClusterConfig cfg;
  cfg.architecture = Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  Deployment d(cfg);

  const std::string text = R"(
0 mkdir /t
0 open /t/a
0 write /t/a 0 1048576
0 write /t/a 1048576 1048576
0 fsync /t/a
0 close /t/a
1 write /b 0 524288
1 close /b
)";
  TraceWorkload w(parse_trace(text));
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(w.operations_replayed(), 8u);
  EXPECT_EQ(r.app_bytes, 2u * 1048576 + 524288);

  bool checked = false;
  d.simulation().spawn([](Deployment& d, bool& checked) -> sim::Task<void> {
    EXPECT_EQ(co_await d.client(0).stat_size("/t/a"), 2u * 1048576);
    EXPECT_EQ(co_await d.client(0).stat_size("/b"), 524288u);
    checked = true;
  }(d, checked));
  d.simulation().run();
  EXPECT_TRUE(checked);
}

TEST(TraceReplay, ImplicitOpenOnFirstUse) {
  ClusterConfig cfg;
  cfg.architecture = Architecture::kNativePvfs;
  cfg.storage_nodes = 4;
  cfg.clients = 1;
  Deployment d(cfg);
  TraceWorkload w(parse_trace("0 write /implicit 0 8192\n"));
  const RunResult r = run_workload(d, w);
  EXPECT_EQ(r.app_bytes, 8192u);
}

}  // namespace
}  // namespace dpnfs::workload
