#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace dpnfs::sim {
namespace {

Task<void> worker(Simulation& sim, Barrier& barrier, Duration work,
                  std::vector<Time>& after) {
  co_await sim.delay(work);
  co_await barrier.arrive_and_wait();
  after.push_back(sim.now());
}

TEST(Barrier, AllPartiesLeaveTogether) {
  Simulation sim;
  Barrier barrier(sim, 3);
  std::vector<Time> after;
  sim.spawn(worker(sim, barrier, ms(5), after));
  sim.spawn(worker(sim, barrier, ms(20), after));
  sim.spawn(worker(sim, barrier, ms(10), after));
  sim.run();
  ASSERT_EQ(after.size(), 3u);
  for (Time t : after) EXPECT_EQ(t, ms(20));  // slowest party gates everyone
}

TEST(Barrier, SinglePartyPassesThrough) {
  Simulation sim;
  Barrier barrier(sim, 1);
  std::vector<Time> after;
  sim.spawn(worker(sim, barrier, ms(3), after));
  sim.run();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0], ms(3));
}

Task<void> phased(Simulation& sim, Barrier& barrier, Duration work, int rounds,
                  std::vector<int>& order, int id) {
  for (int r = 0; r < rounds; ++r) {
    co_await sim.delay(work);
    co_await barrier.arrive_and_wait();
    order.push_back(r * 100 + id);
  }
}

TEST(Barrier, CyclicReuseKeepsPhasesSeparate) {
  Simulation sim;
  Barrier barrier(sim, 2);
  std::vector<int> order;
  sim.spawn(phased(sim, barrier, ms(1), 3, order, 0));
  sim.spawn(phased(sim, barrier, ms(7), 3, order, 1));
  sim.run();
  ASSERT_EQ(order.size(), 6u);
  // Rounds must be strictly ordered: all of round r before any of r+1.
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(order[i] / 100, order[i - 1] / 100);
  }
}

}  // namespace
}  // namespace dpnfs::sim
