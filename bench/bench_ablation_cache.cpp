// Ablation 2: the NFSv4 client write-back cache and readahead.
//
// Figures 6d/6e and 7c/7d hinge on the client data cache coalescing 8 KB
// application requests into wsize/rsize wire requests.  Disabling the cache
// (every application request becomes an RPC) shows how much of Direct-pNFS's
// small-I/O advantage is the cache rather than the direct data path.  The
// write table adds a middle rung — cache on but write-back coalescing off —
// isolating the per-DS scheduler's extent merging from page-cache buffering.
#include "bench_common.hpp"
#include "workload/ior.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;
using core::Architecture;

int main(int argc, char** argv) {
  const bool quick = flag_present(argc, argv, "--quick");
  const std::vector<uint32_t> clients = quick
                                            ? std::vector<uint32_t>{2, 8}
                                            : std::vector<uint32_t>{1, 2, 4, 8};
  const uint64_t bytes = quick ? 20'000'000 : 100'000'000;

  std::printf("== Ablation: Direct-pNFS client data cache on/off, "
              "8 KB application blocks ==\n");
  struct Variant {
    const char* label;
    bool cache;
    bool coalesce;
    bool write_only;  ///< coalescing only matters on the write path
  };
  const Variant variants[] = {
      {"cache on", true, true, false},
      {"cache on, no coalesce", true, false, true},
      {"cache off", false, true, false},
  };
  for (bool write : {true, false}) {
    std::vector<Series> series;
    for (const Variant& v : variants) {
      if (v.write_only && !write) continue;
      Series s;
      s.label = v.label;
      for (uint32_t n : clients) {
        core::ClusterConfig cfg = paper_config(Architecture::kDirectPnfs, n);
        cfg.nfs_client.data_cache = v.cache;
        cfg.nfs_client.coalesce_writes = v.coalesce;
        core::Deployment d(cfg);
        workload::IorConfig ior;
        ior.write = write;
        ior.block_size = 8 * 1024;
        ior.bytes_per_client = bytes;
        workload::IorWorkload w(ior);
        s.values.push_back(run_workload(d, w).aggregate_mbps());
      }
      series.push_back(std::move(s));
    }
    print_table(write ? "IOR write, 8 KB blocks" : "IOR read, 8 KB blocks",
                "clients", clients, series, "aggregate MB/s");
  }
  return 0;
}
