// Micro-benchmarks (google-benchmark) for the hot building blocks: XDR
// codecs, interval sets, the sparse range buffer, the simulation kernel's
// event throughput, and the observability hot-path primitives.  These bound
// how large a simulated experiment can be before wall-clock time matters.
//
// `--metrics-smoke[=path]` skips the benchmarks and instead runs a tiny
// deployment to emit one RunResult::metrics_json document (default
// BENCH_micro_metrics.json) — tools/check_metrics_schema.py validates it
// from ctest.
#include <benchmark/benchmark.h>

#include <cstring>

#include "core/deployment.hpp"
#include "nfs/layout.hpp"
#include "nfs/ops.hpp"
#include "rpc/xdr.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "util/interval_set.hpp"
#include "util/obs.hpp"
#include "util/range_buffer.hpp"
#include "util/rng.hpp"
#include "workload/ior.hpp"

namespace {

using namespace dpnfs;

void BM_XdrEncodePrimitives(benchmark::State& state) {
  for (auto _ : state) {
    rpc::XdrEncoder enc;
    for (int i = 0; i < 64; ++i) {
      enc.put_u32(static_cast<uint32_t>(i));
      enc.put_u64(static_cast<uint64_t>(i) << 32);
      enc.put_string("component-name");
    }
    benchmark::DoNotOptimize(std::move(enc).take());
  }
  state.SetItemsProcessed(state.iterations() * 192);
}
BENCHMARK(BM_XdrEncodePrimitives);

void BM_XdrRoundTripCompound(benchmark::State& state) {
  for (auto _ : state) {
    nfs::CompoundBuilder b;
    b.add(nfs::OpCode::kSequence, nfs::SequenceArgs{nfs::SessionId{1}, 0});
    b.add(nfs::OpCode::kPutFh, nfs::PutFhArgs{nfs::FileHandle{42}});
    b.add(nfs::OpCode::kWrite,
          nfs::WriteArgs{nfs::Stateid{7}, 1 << 20, nfs::StableHow::kUnstable,
                         rpc::Payload::virtual_bytes(2 << 20)});
    rpc::XdrEncoder enc = std::move(b).finish();
    const auto buf = std::move(enc).take();
    rpc::XdrDecoder dec(buf);
    benchmark::DoNotOptimize(dec.get_u32());
  }
}
BENCHMARK(BM_XdrRoundTripCompound);

void BM_FileLayoutEncodeDecode(benchmark::State& state) {
  nfs::FileLayout l;
  l.stripe_unit = 2 << 20;
  for (uint32_t i = 0; i < 6; ++i) {
    l.devices.push_back(nfs::DeviceId{i});
    l.fhs.push_back(nfs::FileHandle{1000 + i});
  }
  for (auto _ : state) {
    rpc::XdrEncoder enc;
    l.encode(enc);
    const auto buf = std::move(enc).take();
    rpc::XdrDecoder dec(buf);
    benchmark::DoNotOptimize(nfs::FileLayout::decode(dec));
  }
}
BENCHMARK(BM_FileLayoutEncodeDecode);

void BM_IntervalSetChurn(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    util::IntervalSet s;
    for (int i = 0; i < 256; ++i) {
      const uint64_t a = rng.below(1 << 20);
      const uint64_t b = a + rng.range(1, 8192);
      if (rng.chance(0.7)) {
        s.add(a, b);
      } else {
        s.subtract(a, b);
      }
    }
    benchmark::DoNotOptimize(s.total_length());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_IntervalSetChurn);

void BM_RangeBufferStoreLoad(benchmark::State& state) {
  const auto chunk = static_cast<size_t>(state.range(0));
  std::vector<std::byte> data(chunk, std::byte{0x5A});
  for (auto _ : state) {
    util::RangeBuffer b;
    for (int i = 0; i < 32; ++i) {
      b.store(static_cast<uint64_t>(i) * chunk,
              rpc::Payload::inline_bytes(data));
    }
    benchmark::DoNotOptimize(b.load(0, 32 * chunk));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * 64 * chunk);
}
BENCHMARK(BM_RangeBufferStoreLoad)->Arg(4096)->Arg(65536);

void BM_SimEventThroughput(benchmark::State& state) {
  // Measures raw scheduler throughput: N coroutines ping-ponging delays.
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 16; ++i) {
      sim.spawn([](sim::Simulation& s) -> sim::Task<void> {
        for (int k = 0; k < 512; ++k) co_await s.delay(sim::us(10));
      }(sim));
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 512);
}
BENCHMARK(BM_SimEventThroughput);

void BM_SemaphoreContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Semaphore sem(sim, 2);
    for (int i = 0; i < 64; ++i) {
      sim.spawn([](sim::Simulation& s, sim::Semaphore& sem) -> sim::Task<void> {
        for (int k = 0; k < 32; ++k) {
          co_await sem.acquire();
          co_await s.delay(sim::us(1));
          sem.release();
        }
      }(sim, sem));
    }
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 32);
}
BENCHMARK(BM_SemaphoreContention);

void BM_ObsCounterHotPath(benchmark::State& state) {
  // The instrumented hot paths do exactly this: bump a pre-resolved
  // counter handle.  Must stay in the "free" range for the <5% overhead
  // budget to hold.
  obs::MetricsRegistry reg;
  obs::Counter* c = &reg.counter("storage0", "pvfs.io", "bytes_written");
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) c->add(4096);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ObsCounterHotPath);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::HistogramMetric* h = &reg.histogram("storage0", "rpc", "service_us",
                                           obs::latency_us_boundaries());
  util::Rng rng(7);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      h->observe(static_cast<double>(rng.below(1'000'000)));
    }
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ObsHistogramObserve);

/// Runs a miniature Direct-pNFS IOR write and dumps the full metrics
/// export for schema validation.
int metrics_smoke(const char* path) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 3;
  cfg.clients = 2;
  core::Deployment d(cfg);
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 16ull << 20;
  workload::IorWorkload w(ior);
  const workload::RunResult r = run_workload(d, w);
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "%s\n", r.metrics_json.c_str());
  std::fclose(f);
  std::printf("wrote %s (%.1f MB/s)\n", path, r.aggregate_mbps());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-smoke", 15) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      return metrics_smoke(eq != nullptr ? eq + 1
                                         : "BENCH_micro_metrics.json");
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
