// Figure 6: IOR aggregate write throughput.
//   (a) separate files, large blocks        (b) single file, large blocks
//   (c) separate files, 100 Mbps Ethernet   (d) separate files, 8 KB blocks
//   (e) single file, 8 KB blocks
#include "bench_common.hpp"
#include "workload/ior.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;
using core::Architecture;

namespace {

void sweep(BenchRecorder& rec, const char* title, const char* figure,
           bool single_file, uint64_t block_size,
           const std::vector<Architecture>& archs,
           const std::vector<uint32_t>& clients, uint64_t bytes_per_client,
           bool hundred_mbps) {
  std::vector<Series> series;
  for (Architecture arch : archs) {
    Series s;
    s.label = core::architecture_name(arch);
    for (uint32_t n : clients) {
      core::ClusterConfig cfg = hundred_mbps ? paper_config_100mbps(arch, n)
                                             : paper_config(arch, n);
      workload::IorConfig ior;
      ior.write = true;
      ior.single_file = single_file;
      ior.block_size = block_size;
      ior.bytes_per_client = bytes_per_client;
      core::Deployment d(cfg);
      workload::IorWorkload w(ior);
      const workload::RunResult r = run_workload(d, w);
      s.values.push_back(r.aggregate_mbps());
      rec.add(figure, s.label, n, r.aggregate_mbps(), "MB/s", r.metrics_json);
    }
    series.push_back(std::move(s));
  }
  print_table(title, "clients", clients, series, "aggregate MB/s");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = flag_present(argc, argv, "--smoke");
  const bool quick = smoke || flag_present(argc, argv, "--quick");
  const auto clients = smoke ? std::vector<uint32_t>{1, 4} : client_sweep(quick);
  const uint64_t bytes = smoke ? 10'000'000 : quick ? 100'000'000 : 500'000'000;
  const uint64_t small_bytes = quick ? 50'000'000 : 500'000'000;

  const std::vector<Architecture> all = {
      Architecture::kDirectPnfs, Architecture::kNativePvfs,
      Architecture::kPnfs2Tier, Architecture::kPnfs3Tier,
      Architecture::kPlainNfs};
  const std::vector<Architecture> fig6c = {Architecture::kDirectPnfs,
                                           Architecture::kNativePvfs,
                                           Architecture::kPnfs2Tier};

  std::printf("== Figure 6: IOR aggregate write throughput ==\n");
  BenchRecorder rec("fig6_write", arg_value(argc, argv, "--out-dir", ""));
  sweep(rec, "Fig 6a: write, separate files, 2 MB blocks", "6a", false,
        2 << 20, all, clients, bytes, false);
  if (smoke) {
    // ctest smoke (label bench-smoke): all five architectures, tiny sweep,
    // Figures 6a and 6d only — enough for the JSON schema gate to chew on,
    // and the 8 KB sweep keeps the write-back coalescing path on the
    // regression radar (tools/check_bench_delta.py).
    sweep(rec, "Fig 6d: write, separate files, 8 KB blocks", "6d", false,
          8 * 1024, all, clients, bytes, false);
    rec.flush();
    return 0;
  }
  sweep(rec, "Fig 6b: write, single file, 2 MB blocks", "6b", true, 2 << 20,
        all, clients, bytes, false);
  sweep(rec, "Fig 6c: write, separate files, 2 MB blocks, 100 Mbps", "6c",
        false, 2 << 20, fig6c, clients, quick ? 20'000'000 : 100'000'000, true);
  sweep(rec, "Fig 6d: write, separate files, 8 KB blocks", "6d", false,
        8 * 1024, all, clients, small_bytes, false);
  sweep(rec, "Fig 6e: write, single file, 8 KB blocks", "6e", true, 8 * 1024,
        all, clients, small_bytes, false);
  rec.flush();
  return 0;
}
