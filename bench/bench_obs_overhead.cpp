// Observability overhead: wall-clock cost of the tracing pipeline at three
// settings over the *same* deterministic workload —
//   off      rate 0.0, span/staging capacity 0 (aggregates only)
//   sampled  rate 0.01 + tail promotion (the recommended production mode)
//   always   rate 1.0 (every span retained, the pre-sampling default)
//
// Two contracts are checked, not just measured:
//   1. Exact aggregates are sampling-independent: traces_started,
//      rpc_hops_total, spans_recorded and the per-op SLO request counts
//      must be bit-identical across all three modes (the simulation is
//      deterministic, so any drift means sampling perturbed accounting —
//      the bench exits 1).
//   2. Sampling makes detail cheap: the "rate-ratio" figure records each
//      mode's wall-clock throughput as a percentage of tracing-off.
//      Sampled should sit within a few percent of off; always-on pays the
//      full span-retention cost.
//
// Wall-clock numbers are host-noise-sensitive, so the delta gate for this
// bench runs with a loose threshold (see bench/CMakeLists.txt); the
// sim-time "goodput" figure is deterministic and gated tightly.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/obs.hpp"
#include "util/tenant.hpp"
#include "workload/oltp.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;

namespace {

struct Mode {
  const char* name;
  double sample_rate;
  size_t span_capacity;   // 0 disables retention + staging entirely
  sim::Duration slo;      // tail-promotion threshold (0 = off)
  uint32_t tenants = 0;   // nonzero: stamp tenant ids (adds 4 wire bytes/RPC)
};

struct ModeResult {
  double sim_mbps = 0;      // deterministic, sim-time
  double best_seconds = 0;  // fastest repetition (noise-robust estimator)
  uint64_t app_bytes = 0;   // per repetition (identical across reps)
  // Exact-aggregate fingerprint — must match across modes.
  uint64_t traces_started = 0;
  uint64_t rpc_hops = 0;
  uint64_t spans_recorded = 0;
  uint64_t slo_requests = 0;
  std::string metrics_json;
  // Tenant-mode contract: per-tenant rows sum exactly to the ledger totals,
  // and the totals match the aggregate rpc.* counters.
  bool tenant_sums_exact = true;
};

// One simulation run under mode `m`; merges timing + aggregates into `out`.
void run_once(const Mode& m, uint32_t clients, uint32_t txns_per_client,
              ModeResult& out) {
  core::ClusterConfig cfg =
      paper_config(core::Architecture::kDirectPnfs, clients);
  cfg.trace_sample_rate = m.sample_rate;
  cfg.trace_span_capacity = m.span_capacity;
  cfg.trace_slo_threshold = m.slo;
  cfg.tenants = m.tenants;
  // OLTP: small RMW + fsync transactions are the span-heaviest workload
  // in the suite — the point is to price the tracing pipeline itself.
  workload::OltpConfig oltp;
  oltp.transactions_per_client = txns_per_client;
  oltp.file_bytes = 64ull << 20;
  core::Deployment d(cfg);
  workload::OltpWorkload w(oltp);

  const auto t0 = std::chrono::steady_clock::now();
  const workload::RunResult r = run_workload(d, w);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  if (out.best_seconds == 0 || secs < out.best_seconds) {
    out.best_seconds = secs;
  }

  out.sim_mbps = r.aggregate_mbps();
  out.app_bytes = r.app_bytes;
  out.traces_started = d.tracer().traces_started();
  out.rpc_hops = d.tracer().rpc_hops_total();
  out.spans_recorded = d.tracer().spans_recorded();
  out.slo_requests = 0;
  for (const auto& [op, slo] : d.tracer().slo_per_op()) {
    (void)op;
    out.slo_requests += slo.requests;
  }
  out.metrics_json = r.metrics_json;

  if (m.tenants != 0) {
    const obs::TenantLedger& ledger = d.tenant_ledger();
    obs::TenantStats sum;
    for (const auto& e : ledger.topk().sorted()) sum.merge(e.value);
    const obs::TenantStats& total = ledger.total();
    uint64_t agg_requests = 0, agg_in = 0, agg_out = 0;
    for (const std::string& node : d.metrics().node_names()) {
      if (const obs::Counter* c =
              d.metrics().find_counter(node, "rpc", "requests")) {
        agg_requests += c->value();
      }
      if (const obs::Counter* c =
              d.metrics().find_counter(node, "rpc", "wire_bytes_in")) {
        agg_in += c->value();
      }
      if (const obs::Counter* c =
              d.metrics().find_counter(node, "rpc", "wire_bytes_out")) {
        agg_out += c->value();
      }
    }
    out.tenant_sums_exact =
        ledger.tenants_evicted() == 0 && sum.rpcs == total.rpcs &&
        sum.wire_bytes_in == total.wire_bytes_in &&
        sum.wire_bytes_out == total.wire_bytes_out &&
        sum.disk_ns == total.disk_ns && total.rpcs == agg_requests &&
        total.wire_bytes_in == agg_in && total.wire_bytes_out == agg_out;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = flag_present(argc, argv, "--smoke");
  const bool quick = smoke || flag_present(argc, argv, "--quick");
  const uint32_t clients = 4;
  const uint32_t txns = quick ? 2'000 : 20'000;
  const int reps = smoke ? 2 : 5;

  const std::vector<Mode> modes = {
      {"off", 0.0, 0, 0},
      {"sampled", 0.01, 4096, sim::ms(50)},
      {"always", 1.0, 4096, sim::ms(50)},
      // Accounting-on rung: sampled tracing plus per-tenant attribution.
      // Excluded from the exact-aggregate contract — the 4-byte tenant word
      // on every call legitimately shifts wire timing — but it carries its
      // own exactness contract (tenant sums == ledger totals == aggregate
      // rpc counters) and its own gated goodput/rate-ratio series.
      {"tenants", 0.01, 4096, sim::ms(50), 4},
  };

  std::printf(
      "== Observability overhead: off vs sampled(1%%) vs always vs "
      "tenants ==\n");
  BenchRecorder rec("obs_overhead", arg_value(argc, argv, "--out-dir", ""));

  // Interleave repetitions round-robin (after one discarded warmup pass)
  // and keep each mode's *fastest* repetition: both standard defenses
  // against wall-clock noise drifting over the run on a shared host.
  std::vector<ModeResult> results(modes.size());
  {
    ModeResult warmup;
    run_once(modes[0], clients, txns, warmup);
  }
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t i = 0; i < modes.size(); ++i) {
      run_once(modes[i], clients, txns, results[i]);
    }
  }
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& r = results[i];
    std::printf(
        "  [%-7s] sim %.1f MB/s  best wall %.3fs (%d reps)  traces=%" PRIu64
        " hops=%" PRIu64 " spans=%" PRIu64 "\n",
        modes[i].name, r.sim_mbps, r.best_seconds, reps, r.traces_started,
        r.rpc_hops, r.spans_recorded);
    rec.add("goodput", modes[i].name, clients, r.sim_mbps, "MB/s",
            r.metrics_json);
  }

  // Contract 1: sampling must not perturb exact aggregates.  The tenants
  // rung changes the wire itself, so it sits outside this contract.
  const ModeResult& off = results[0];
  for (size_t i = 1; i < results.size(); ++i) {
    if (modes[i].tenants != 0) continue;
    const ModeResult& r = results[i];
    if (r.traces_started != off.traces_started || r.rpc_hops != off.rpc_hops ||
        r.spans_recorded != off.spans_recorded ||
        r.slo_requests != off.slo_requests || r.sim_mbps != off.sim_mbps) {
      std::fprintf(stderr,
                   "FAIL: mode '%s' aggregates diverge from 'off' "
                   "(traces %" PRIu64 "/%" PRIu64 ", hops %" PRIu64 "/%" PRIu64
                   ", spans %" PRIu64 "/%" PRIu64 ", slo reqs %" PRIu64
                   "/%" PRIu64 ")\n",
                   modes[i].name, r.traces_started, off.traces_started,
                   r.rpc_hops, off.rpc_hops, r.spans_recorded,
                   off.spans_recorded, r.slo_requests, off.slo_requests);
      return 1;
    }
  }
  std::printf("  exact aggregates identical across all modes\n");

  // Contract 1b: with accounting on, attribution must be exact — per-tenant
  // rows sum to the ledger totals and the totals match the aggregate rpc
  // counters (same call site, so any drift is a double- or un-charge).
  for (size_t i = 0; i < results.size(); ++i) {
    if (modes[i].tenants != 0 && !results[i].tenant_sums_exact) {
      std::fprintf(stderr,
                   "FAIL: mode '%s' per-tenant sums diverge from ledger "
                   "totals or aggregate rpc counters\n",
                   modes[i].name);
      return 1;
    }
  }
  std::printf("  per-tenant sums match ledger totals and rpc aggregates\n");

  // Contract 2: wall-clock throughput relative to tracing-off (percent),
  // from each mode's fastest repetition.
  const double off_rate =
      static_cast<double>(off.app_bytes) / off.best_seconds;
  for (size_t i = 1; i < results.size(); ++i) {
    const double rate =
        static_cast<double>(results[i].app_bytes) / results[i].best_seconds;
    const double pct = 100.0 * rate / off_rate;
    std::printf("  [%-7s] wall-clock throughput = %.1f%% of tracing-off\n",
                modes[i].name, pct);
    rec.add("rate-ratio", std::string(modes[i].name) + "-vs-off", clients, pct,
            "percent", "");
  }

  rec.flush();
  return 0;
}
