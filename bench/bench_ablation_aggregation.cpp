// Ablation 3: aggregation drivers (paper §4.3).
//
// Builds a small pNFS cluster whose layout source hands out each of the
// aggregation schemes in turn, then measures striped IOR-style reads and
// writes through a stock client + the matching driver:
//   * round-robin      — the standard scheme (baseline),
//   * variable-stripe  — small stripes for the file head, large for the
//                        bulk (media-server layout),
//   * replicated       — reads spread over replicas; writes pay N copies,
//   * nested           — striping across groups, then within groups.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/aggregation_drivers.hpp"
#include "lfs/object_store.hpp"
#include "nfs/client.hpp"
#include "nfs/local_backend.hpp"
#include "nfs/server.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;
using sim::Task;

namespace {

/// Layout source parameterized on the aggregation scheme under test.
class AblationLayoutSource final : public nfs::LayoutSource {
 public:
  AblationLayoutSource(std::vector<nfs::DeviceEntry> devices,
                       nfs::FileLayout prototype,
                       nfs::LocalBackend* mds_backend)
      : devices_(std::move(devices)),
        prototype_(std::move(prototype)),
        mds_backend_(mds_backend) {}

  Task<nfs::Status> get_device_list(std::vector<nfs::DeviceEntry>* out) override {
    *out = devices_;
    co_return nfs::Status::kOk;
  }
  Task<nfs::Status> layout_get(nfs::FileHandle fh, nfs::LayoutIoMode,
                               nfs::FileLayout* out) override {
    *out = prototype_;
    out->fhs.clear();
    for (const auto& d : devices_) {
      out->fhs.push_back(nfs::FileHandle{fh.id * 1000 + d.device.id});
    }
    co_return nfs::Status::kOk;
  }
  Task<nfs::Status> layout_commit(nfs::FileHandle fh, uint64_t new_size,
                                  bool changed, uint64_t* post_change) override {
    *post_change = 0;
    if (changed) co_await mds_backend_->set_size(fh, new_size);
    co_return nfs::Status::kOk;
  }
  Task<nfs::Status> layout_return(nfs::FileHandle) override {
    co_return nfs::Status::kOk;
  }

 private:
  std::vector<nfs::DeviceEntry> devices_;
  nfs::FileLayout prototype_;
  nfs::LocalBackend* mds_backend_;
};

struct Cluster {
  static constexpr int kDataServers = 4;
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  std::vector<std::unique_ptr<lfs::ObjectStore>> stores;
  std::vector<std::unique_ptr<nfs::LocalBackend>> backends;
  std::vector<std::unique_ptr<nfs::NfsServer>> servers;
  std::unique_ptr<lfs::ObjectStore> mds_store;
  std::unique_ptr<nfs::LocalBackend> mds_backend;
  std::unique_ptr<AblationLayoutSource> layouts;
  std::unique_ptr<nfs::NfsServer> mds;
  std::vector<std::unique_ptr<nfs::NfsClient>> clients;

  explicit Cluster(nfs::FileLayout prototype, int n_clients) {
    std::vector<nfs::DeviceEntry> devices;
    for (int i = 0; i < kDataServers; ++i) {
      auto& node = net.add_node(sim::NodeParams{
          .name = "ds" + std::to_string(i),
          .nic = sim::NicParams{},
          .disk = sim::DiskParams{},
          .cpu = sim::CpuParams{}});
      stores.push_back(std::make_unique<lfs::ObjectStore>(node));
      backends.push_back(
          std::make_unique<nfs::LocalBackend>(*stores.back(), /*flat=*/true));
      nfs::ServerConfig scfg;
      scfg.is_data_server = true;
      servers.push_back(std::make_unique<nfs::NfsServer>(
          fabric, node, rpc::kNfsPort, *backends.back(), nullptr, scfg));
      servers.back()->start();
      devices.push_back(nfs::DeviceEntry{nfs::DeviceId{uint32_t(i)}, node.id(),
                                         rpc::kNfsPort});
    }
    auto& mds_node = net.add_node(sim::NodeParams{
        .name = "mds",
        .nic = sim::NicParams{},
        .disk = sim::DiskParams{},
        .cpu = sim::CpuParams{}});
    mds_store = std::make_unique<lfs::ObjectStore>(mds_node);
    mds_backend = std::make_unique<nfs::LocalBackend>(*mds_store);
    layouts = std::make_unique<AblationLayoutSource>(devices, prototype,
                                                     mds_backend.get());
    mds = std::make_unique<nfs::NfsServer>(fabric, mds_node, 2050,
                                           *mds_backend, layouts.get());
    mds->start();

    auto aggregations = std::make_shared<const nfs::AggregationRegistry>(
        core::full_aggregation_registry());
    for (int i = 0; i < n_clients; ++i) {
      auto& cn = net.add_node(sim::NodeParams{
          .name = "client" + std::to_string(i),
          .nic = sim::NicParams{},
          .disk = std::nullopt,
          .cpu = sim::CpuParams{}});
      clients.push_back(std::make_unique<nfs::NfsClient>(
          fabric, cn, mds->address(), "c@SIM", nfs::ClientConfig{},
          aggregations));
    }
  }
};

double run_case(const nfs::FileLayout& prototype, bool write, int n_clients,
                uint64_t bytes_per_client) {
  Cluster c(prototype, n_clients);
  sim::Time t0 = 0, t1 = 0;
  bool ok = false;
  c.sim.spawn([](Cluster& c, bool write, uint64_t bytes, sim::Time& t0,
                 sim::Time& t1, bool& ok) -> Task<void> {
    for (auto& cl : c.clients) co_await cl->mount();
    // Pre-write for the read case.
    if (!write) {
      sim::WaitGroup wg(c.sim);
      for (size_t i = 0; i < c.clients.size(); ++i) {
        wg.spawn([](Cluster& c, size_t i, uint64_t bytes) -> Task<void> {
          auto f = co_await c.clients[i]->open("/f" + std::to_string(i), true);
          for (uint64_t off = 0; off < bytes; off += 2 << 20) {
            co_await c.clients[i]->write(
                f, off, rpc::Payload::virtual_bytes(
                            std::min<uint64_t>(2 << 20, bytes - off)));
          }
          co_await c.clients[i]->close(f);
          c.clients[i]->drop_caches();
        }(c, i, bytes));
      }
      co_await wg.wait();
    }
    t0 = c.sim.now();
    sim::WaitGroup wg(c.sim);
    for (size_t i = 0; i < c.clients.size(); ++i) {
      wg.spawn([](Cluster& c, size_t i, bool write, uint64_t bytes) -> Task<void> {
        auto f = co_await c.clients[i]->open("/f" + std::to_string(i), write);
        for (uint64_t off = 0; off < bytes; off += 2 << 20) {
          const uint64_t n = std::min<uint64_t>(2 << 20, bytes - off);
          if (write) {
            co_await c.clients[i]->write(f, off, rpc::Payload::virtual_bytes(n));
          } else {
            (void)co_await c.clients[i]->read(f, off, n);
          }
        }
        co_await c.clients[i]->close(f);
      }(c, i, write, bytes));
    }
    co_await wg.wait();
    t1 = c.sim.now();
    ok = true;
  }(c, write, bytes_per_client, t0, t1, ok));
  c.sim.run();
  if (!ok) return 0.0;
  const double secs = sim::to_seconds(t1 - t0);
  return static_cast<double>(bytes_per_client) * n_clients / 1e6 / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = flag_present(argc, argv, "--quick");
  const uint64_t bytes = quick ? 32'000'000 : 128'000'000;
  const int n_clients = 4;

  struct Case {
    const char* name;
    nfs::FileLayout layout;
  };
  std::vector<Case> cases;
  {
    nfs::FileLayout rr;
    rr.aggregation = nfs::AggregationType::kRoundRobin;
    rr.stripe_unit = 1 << 20;
    for (uint32_t i = 0; i < 4; ++i) rr.devices.push_back(nfs::DeviceId{i});
    cases.push_back({"round-robin", rr});

    nfs::FileLayout vs = rr;
    vs.aggregation = nfs::AggregationType::kVariableStripe;
    // 64 stripes of 64 KB (metadata-ish head), then 1 MB stripes forever.
    vs.params = {2, 64 * 1024, 64, 1 << 20, 1};
    cases.push_back({"variable-stripe", vs});

    nfs::FileLayout rep = rr;
    rep.aggregation = nfs::AggregationType::kReplicated;
    cases.push_back({"replicated", rep});

    nfs::FileLayout nested = rr;
    nested.aggregation = nfs::AggregationType::kNested;
    nested.params = {2};  // 2 groups of 2 devices
    cases.push_back({"nested", nested});
  }

  std::printf("== Ablation: aggregation drivers (4 data servers, 4 clients) ==\n");
  std::printf("%-18s%16s%16s\n", "scheme", "write MB/s", "read MB/s");
  for (const auto& c : cases) {
    const double w = run_case(c.layout, true, n_clients, bytes);
    const double r = run_case(c.layout, false, n_clients, bytes);
    std::printf("%-18s%16.1f%16.1f\n", c.name, w, r);
  }
  std::printf("\nExpected: replicated writes pay ~4x (every copy), replicated\n"
              "reads match round-robin; variable-stripe tracks round-robin with\n"
              "extra small-stripe requests at the file head; nested matches\n"
              "round-robin on this uniform workload.\n");
  return 0;
}
