// SSH-build benchmark (paper §6.4.3 discussion): per-phase times for the
// uncompress / configure / compile stages of building OpenSSH.
//
// Expected shape (the paper's qualitative finding): Direct-pNFS *reduces*
// compile time (small reads and writes ride the client cache and the
// parallel data path) but *increases* uncompress and configure time
// (creates and attribute updates funnel through the central MDS into the
// PFS metadata manager).
#include "bench_common.hpp"
#include "workload/sshbuild.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;
using core::Architecture;

int main(int argc, char** argv) {
  const bool quick = flag_present(argc, argv, "--quick");
  const std::vector<Architecture> archs = {Architecture::kDirectPnfs,
                                           Architecture::kNativePvfs};

  std::printf("== SSH build: per-phase times (1 client) ==\n");
  std::printf("%-14s%14s%14s%14s\n", "", "uncompress", "configure", "compile");
  for (Architecture arch : archs) {
    core::Deployment d(paper_config(arch, 1));
    workload::SshBuildConfig cfg;
    if (quick) {
      cfg.source_files = 40;
      cfg.header_files = 15;
      cfg.configure_probes = 60;
      cfg.configure_scripts = 15;
    }
    workload::SshBuildWorkload w(cfg);
    (void)run_workload(d, w);
    std::printf("%-14s%13.2fs%13.2fs%13.2fs\n",
                core::architecture_name(arch), w.uncompress_seconds(),
                w.configure_seconds(), w.compile_seconds());
  }
  std::printf("\nExpected: Direct-pNFS wins the compile phase, loses the\n"
              "metadata-bound uncompress/configure phases (paper section 6.4.3).\n");
  return 0;
}
