// Ablation 1: how much does *accurate* layout knowledge matter?
//
// Direct-pNFS's defining feature is that the layout translator gives clients
// the exact data placement.  This ablation compares:
//   * Direct-pNFS            — exact layouts (translator),
//   * pNFS-2tier             — same co-located servers, placement-oblivious
//                               layouts (every request proxied through the
//                               exported PFS),
// on the same IOR workload: the gap is the cost of losing placement
// knowledge while keeping all hardware identical (paper §4.1's argument).
#include "bench_common.hpp"
#include "workload/ior.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;
using core::Architecture;

int main(int argc, char** argv) {
  const bool quick = flag_present(argc, argv, "--quick");
  const std::vector<uint32_t> clients = quick
                                            ? std::vector<uint32_t>{2, 8}
                                            : std::vector<uint32_t>{1, 2, 4, 8};
  const uint64_t bytes = quick ? 50'000'000 : 250'000'000;

  std::printf("== Ablation: exact layouts (Direct-pNFS) vs placement-oblivious "
              "layouts (2-tier) ==\n");
  for (bool write : {true, false}) {
    std::vector<Series> series;
    for (Architecture arch :
         {Architecture::kDirectPnfs, Architecture::kPnfs2Tier}) {
      Series s;
      s.label = std::string(core::architecture_name(arch)) +
                (arch == Architecture::kDirectPnfs ? " (exact)" : " (oblivious)");
      for (uint32_t n : clients) {
        core::Deployment d(paper_config(arch, n));
        workload::IorConfig ior;
        ior.write = write;
        ior.bytes_per_client = bytes;
        workload::IorWorkload w(ior);
        s.values.push_back(run_workload(d, w).aggregate_mbps());
      }
      series.push_back(std::move(s));
    }
    print_table(write ? "IOR write, separate files, 2 MB blocks"
                      : "IOR read, separate files, 2 MB blocks (warm caches)",
                "clients", clients, series, "aggregate MB/s");
  }
  return 0;
}
