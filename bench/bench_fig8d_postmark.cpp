// Figure 8d: Postmark — transactions per second for 1, 4, and 8 clients.
// Per the paper, stripe size and rsize/wsize drop to 64 KB for this
// metadata/small-I/O workload.
#include "bench_common.hpp"
#include "workload/postmark.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;
using core::Architecture;

int main(int argc, char** argv) {
  const bool quick = flag_present(argc, argv, "--quick");
  const std::vector<uint32_t> clients = {1, 4, 8};
  const std::vector<Architecture> archs = {Architecture::kDirectPnfs,
                                           Architecture::kNativePvfs};

  std::printf("== Figure 8d: Postmark transaction throughput ==\n");
  std::vector<Series> series;
  for (Architecture arch : archs) {
    Series s;
    s.label = core::architecture_name(arch);
    for (uint32_t n : clients) {
      core::ClusterConfig ccfg = paper_config(arch, n);
      ccfg.stripe_unit = 64 * 1024;
      ccfg.nfs_client.rsize = 64 * 1024;
      ccfg.nfs_client.wsize = 64 * 1024;
      core::Deployment d(ccfg);
      workload::PostmarkConfig cfg;
      cfg.transactions = quick ? 400 : 2'000;
      workload::PostmarkWorkload w(cfg);
      s.values.push_back(run_workload(d, w).tps());
    }
    series.push_back(std::move(s));
  }
  print_table("Fig 8d: Postmark (2000 txns, 100 files, 10 dirs, 64 KB stripes)",
              "clients", clients, series, "transactions/s");
  return 0;
}
