// Figure 8c: OLTP — aggregate I/O throughput of 8 KB read-modify-write
// transactions (fsync after each) for 1, 4, and 8 clients.
#include "bench_common.hpp"
#include "workload/oltp.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;
using core::Architecture;

int main(int argc, char** argv) {
  const bool quick = flag_present(argc, argv, "--quick");
  const std::vector<uint32_t> clients = {1, 4, 8};
  const std::vector<Architecture> archs = {Architecture::kDirectPnfs,
                                           Architecture::kNativePvfs};

  std::printf("== Figure 8c: OLTP aggregate I/O throughput ==\n");
  std::vector<Series> series;
  for (Architecture arch : archs) {
    Series s;
    s.label = core::architecture_name(arch);
    for (uint32_t n : clients) {
      core::Deployment d(paper_config(arch, n));
      workload::OltpConfig cfg;
      cfg.transactions_per_client = quick ? 1'000 : 20'000;
      if (quick) cfg.file_bytes = 64ull << 20;
      workload::OltpWorkload w(cfg);
      const auto r = run_workload(d, w);
      s.values.push_back(r.aggregate_mbps());
      if (n == clients.back()) {
        std::printf("  [%s, %u clients] txn latency p50=%.1fms p99=%.1fms\n",
                    s.label.c_str(), n, w.latencies().p50() * 1e3,
                    w.latencies().p99() * 1e3);
      }
    }
    series.push_back(std::move(s));
  }
  print_table("Fig 8c: OLTP (20k txns/client, 8 KB RMW + fsync)", "clients",
              clients, series, "aggregate MB/s");
  return 0;
}
