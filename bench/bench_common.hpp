// Shared harness for the figure-reproduction benches.
//
// Every bench binary prints the corresponding paper figure as a table:
// one row per client count, one column per architecture — the same series
// the paper plots.  `--quick` shrinks data sizes and the client sweep for
// smoke runs; the default reproduces the paper's parameters.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "util/obs.hpp"
#include "workload/runner.hpp"

namespace dpnfs::bench {

inline bool flag_present(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline const char* arg_value(int argc, char** argv, const char* key,
                             const char* fallback) {
  const size_t klen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, klen) == 0 && argv[i][klen] == '=') {
      return argv[i] + klen + 1;
    }
  }
  return fallback;
}

/// The paper's testbed (§6.1): gigabit Ethernet with jumbo frames, six
/// storage nodes (one doubling as metadata manager), 2 MB stripes, 8 nfsd
/// threads, 2 MB rsize/wsize.  See DESIGN.md §5 for the calibration notes.
inline core::ClusterConfig paper_config(core::Architecture arch,
                                        uint32_t clients) {
  core::ClusterConfig cfg;
  cfg.architecture = arch;
  cfg.storage_nodes = 6;
  cfg.clients = clients;
  return cfg;
}

/// Same cluster on 100 Mbps Ethernet (Figure 6c).
inline core::ClusterConfig paper_config_100mbps(core::Architecture arch,
                                                uint32_t clients) {
  core::ClusterConfig cfg = paper_config(arch, clients);
  cfg.nic.bytes_per_sec = 11.5e6;
  return cfg;
}

struct Series {
  std::string label;
  std::vector<double> values;
};

inline void print_table(const std::string& title, const std::string& x_label,
                        const std::vector<uint32_t>& xs,
                        const std::vector<Series>& series,
                        const std::string& unit) {
  std::printf("\n%s  [%s]\n", title.c_str(), unit.c_str());
  std::printf("%-12s", x_label.c_str());
  for (const auto& s : series) std::printf("%14s", s.label.c_str());
  std::printf("\n");
  for (size_t row = 0; row < xs.size(); ++row) {
    std::printf("%-12u", xs[row]);
    for (const auto& s : series) {
      if (row < s.values.size()) {
        std::printf("%14.1f", s.values[row]);
      } else {
        std::printf("%14s", "-");
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

inline std::vector<uint32_t> client_sweep(bool quick) {
  if (quick) return {1, 4, 8};
  return {1, 2, 3, 4, 5, 6, 7, 8};
}

/// Accumulates one record per data point and writes `BENCH_<name>.json`
/// beside the bench's table output.  Each record carries the run's full
/// observability export (Deployment::metrics_json), so the JSON explains
/// the table: per-storage-node bytes, RPC counts, trace hop statistics.
/// Validate with tools/check_metrics_schema.py.
///
/// The output directory resolves in priority order: the `out_dir`
/// constructor argument (benches pass their `--out-dir=` flag through),
/// then the DPNFS_BENCH_DIR environment variable, then the working
/// directory — so ctest smoke runs can land JSON in the source tree no
/// matter where the binary runs.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string bench_name, std::string out_dir = "")
      : name_(std::move(bench_name)), out_dir_(std::move(out_dir)) {
    if (out_dir_.empty()) {
      if (const char* env = std::getenv("DPNFS_BENCH_DIR");
          env != nullptr && env[0] != '\0') {
        out_dir_ = env;
      }
    }
  }
  ~BenchRecorder() { flush(); }
  BenchRecorder(const BenchRecorder&) = delete;
  BenchRecorder& operator=(const BenchRecorder&) = delete;

  void add(const std::string& figure, const std::string& architecture,
           uint32_t clients, double value, const std::string& unit,
           const std::string& metrics_json) {
    char num[64];
    std::snprintf(num, sizeof num, "%.6g", value);
    std::string rec = "{\"figure\":\"" + obs::json_escape(figure) +
                      "\",\"architecture\":\"" + obs::json_escape(architecture) +
                      "\",\"clients\":" + std::to_string(clients) +
                      ",\"value\":" + num + ",\"unit\":\"" +
                      obs::json_escape(unit) + "\",\"metrics\":" +
                      (metrics_json.empty() ? "{}" : metrics_json) + "}";
    records_.push_back(std::move(rec));
  }

  void flush() {
    if (flushed_) return;
    flushed_ = true;
    std::string path = "BENCH_" + name_ + ".json";
    if (!out_dir_.empty()) {
      const bool has_sep = out_dir_.back() == '/';
      path = out_dir_ + (has_sep ? "" : "/") + path;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"records\":[\n",
                 obs::json_escape(name_).c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", records_[i].c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  std::string name_;
  std::string out_dir_;
  std::vector<std::string> records_;
  bool flushed_ = false;
};

}  // namespace dpnfs::bench
