// Figure 8a: ATLAS Digitization write replay — aggregate write throughput
// for 1, 4, and 8 clients, Direct-pNFS vs PVFS2.
//
// The request mixture (95% of requests < 275 KB, 95% of bytes in requests
// >= 275 KB) exercises exactly the small-write coalescing that separates
// the NFSv4.1 write-back client from the cacheless parallel-FS client.
#include "bench_common.hpp"
#include "workload/atlas.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;
using core::Architecture;

int main(int argc, char** argv) {
  const bool quick = flag_present(argc, argv, "--quick");
  const std::vector<uint32_t> clients = {1, 4, 8};
  const std::vector<Architecture> archs = {Architecture::kDirectPnfs,
                                           Architecture::kNativePvfs};

  std::printf("== Figure 8a: ATLAS digitization aggregate write throughput ==\n");
  std::vector<Series> series;
  for (Architecture arch : archs) {
    Series s;
    s.label = core::architecture_name(arch);
    for (uint32_t n : clients) {
      core::Deployment d(paper_config(arch, n));
      workload::AtlasConfig cfg;
      if (quick) {
        cfg.bytes_per_client = 80'000'000;
        cfg.file_span = 80'000'000;
      }
      workload::AtlasWorkload w(cfg);
      s.values.push_back(run_workload(d, w).aggregate_mbps());
    }
    series.push_back(std::move(s));
  }
  print_table("Fig 8a: ATLAS (650 MB random-offset mixed-size writes/client)",
              "clients", clients, series, "aggregate MB/s");
  return 0;
}
