// Ablation: vectored (list) I/O on the strided checkpoint workload.
//
// The strided BT-IO variant leaves each client with mutually non-adjacent
// dirty extents (stride = n_clients * record_bytes), the worst case for
// plain extent coalescing.  With listio enabled the write-back scheduler
// folds those extents into multi-region WRITEVs; disabled, every record is
// its own WRITE RPC.  Records are small (512 B, true to BT-IO's
// noncontiguous element writes), which makes the per-RPC fixed cost — the
// overhead list I/O exists to amortize — the binding resource on the
// client CPU.  The bench sweeps client counts on Direct-pNFS and reports
// aggregate MB/s plus the WRITE-RPC reduction factor, and hard-fails if
// folding stops delivering at least a 4x RPC reduction or stops being
// faster — the delta gate then guards the recorded series.
//
// --sweep-regions replaces the client sweep with a listio_max_regions
// sweep at the 4-client point (the EXPERIMENTS.md knob-tuning recipe).
#include "bench_common.hpp"
#include "workload/strided.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;
using core::Architecture;

namespace {

constexpr uint32_t kRecordBytes = 512;

struct CaseResult {
  double mbps = 0;
  uint64_t write_rpcs = 0;
  std::string metrics_json;
};

CaseResult run_case(bool listio, uint32_t clients, uint32_t records,
                    uint32_t checkpoints, uint32_t max_regions) {
  core::ClusterConfig cfg = paper_config(Architecture::kDirectPnfs, clients);
  cfg.listio_enabled = listio;
  // 16 regions per WRITEV is the sweet spot on this cluster: enough to
  // amortize the per-RPC cost, small enough that several WRITEVs stay in
  // flight per DS and keep the wire and server CPU overlapped (run
  // --sweep-regions to reproduce the tradeoff).
  cfg.listio_max_regions = max_regions;
  // SSD-class disks: COMMIT-time flush seek order otherwise dominates the
  // timing and drowns the per-RPC protocol cost this ablation isolates.
  cfg.disk.bytes_per_sec = 500e6;
  cfg.disk.positioning = sim::us(10);
  cfg.disk.per_request = sim::us(20);
  core::Deployment d(cfg);
  workload::StridedConfig scfg;
  scfg.record_bytes = kRecordBytes;
  scfg.records_per_checkpoint = records;
  scfg.checkpoints = checkpoints;
  scfg.compute_per_checkpoint = sim::ms(10);
  scfg.verify_read = false;  // measure the write path alone
  workload::StridedWorkload w(scfg);
  const workload::RunResult r = run_workload(d, w);

  CaseResult out;
  out.mbps = r.aggregate_mbps();
  out.metrics_json = r.metrics_json;
  for (uint32_t i = 0; i < clients; ++i) {
    const auto* c = d.metrics().find_counter("client" + std::to_string(i),
                                             "client.sched",
                                             "dispatched_writes");
    out.write_rpcs += c != nullptr ? c->value() : 0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = flag_present(argc, argv, "--smoke");
  const bool quick = smoke || flag_present(argc, argv, "--quick");
  // Enough records that every checkpoint spans all six storage nodes
  // (6144 * 4 clients * 512 B = 12 MiB = 6 stripe units).
  const uint32_t records = 6144;
  const uint32_t checkpoints = quick ? 2 : 4;

  if (flag_present(argc, argv, "--sweep-regions")) {
    std::printf("== listio_max_regions sweep (4 clients, %u B records) ==\n",
                kRecordBytes);
    for (uint32_t mr : {2u, 4u, 8u, 16u, 32u, 64u}) {
      const CaseResult r = run_case(true, 4, records, checkpoints, mr);
      std::printf("max_regions=%2u  %7.1f MB/s  write_rpcs=%llu\n", mr, r.mbps,
                  static_cast<unsigned long long>(r.write_rpcs));
    }
    const CaseResult off = run_case(false, 4, records, checkpoints, 16);
    std::printf("listio-off     %7.1f MB/s  write_rpcs=%llu\n", off.mbps,
                static_cast<unsigned long long>(off.write_rpcs));
    return 0;
  }

  // One client degenerates (stride 1 means the records are contiguous and
  // plain coalescing already folds them), so the sweep starts at two.
  const auto clients = smoke ? std::vector<uint32_t>{2, 4}
                             : std::vector<uint32_t>{2, 4, 6, 8};

  std::printf("== Ablation: vectored list I/O, strided checkpoints "
              "(Direct-pNFS) ==\n");
  BenchRecorder rec("ablation_listio", arg_value(argc, argv, "--out-dir", ""));

  Series on_mbps{"listio-on", {}}, off_mbps{"listio-off", {}};
  Series factor{"rpc-factor", {}};
  bool gate_ok = true;
  for (uint32_t n : clients) {
    const CaseResult on = run_case(true, n, records, checkpoints, 16);
    const CaseResult off = run_case(false, n, records, checkpoints, 16);
    const double reduction =
        on.write_rpcs > 0
            ? static_cast<double>(off.write_rpcs) / on.write_rpcs
            : 0.0;
    on_mbps.values.push_back(on.mbps);
    off_mbps.values.push_back(off.mbps);
    factor.values.push_back(reduction);
    rec.add("listio-on", "direct-pnfs", n, on.mbps, "MB/s", on.metrics_json);
    rec.add("listio-off", "direct-pnfs", n, off.mbps, "MB/s",
            off.metrics_json);
    rec.add("write-rpc-reduction", "direct-pnfs", n, reduction, "x", "");
    if (reduction < 4.0) {
      std::fprintf(stderr,
                   "FAIL: %u clients: %llu WRITEs with listio vs %llu "
                   "without — reduction %.2fx < 4x\n",
                   n, static_cast<unsigned long long>(on.write_rpcs),
                   static_cast<unsigned long long>(off.write_rpcs), reduction);
      gate_ok = false;
    }
    if (on.mbps <= off.mbps) {
      std::fprintf(stderr,
                   "FAIL: %u clients: listio-on %.1f MB/s not faster than "
                   "listio-off %.1f MB/s\n",
                   n, on.mbps, off.mbps);
      gate_ok = false;
    }
  }
  print_table("Strided checkpoint write throughput", "clients", clients,
              {on_mbps, off_mbps}, "aggregate MB/s");
  print_table("WRITE-RPC reduction from folding", "clients", clients,
              {factor}, "x fewer WRITEs");
  rec.flush();
  return gate_ok ? 0 : 1;
}
