// Ablation: redundancy schemes under sequential I/O and permanent DS loss.
//
// Three aggregations over the paper's six-node Direct-pNFS testbed:
// plain striping, 2-way replication (RAID-1 mirroring), and systematic
// Reed-Solomon EC(4+2).  Two questions, one per table:
//
//   1. What does redundancy cost on the foreground path?  Sequential IOR
//      write throughput: mirroring pays 2x the wire bytes, EC pays the
//      parity fraction (m/k = 50% here) plus read-modify-write on partial
//      groups.
//   2. What does a permanent data-server loss cost readers?  One storage
//      node is killed for good, then cold clients stream the files back
//      through the degraded machinery (surviving replica or k-of-n
//      reconstruction).  The bench hard-fails unless every byte comes back
//      intact with zero MDS fallbacks — the delta gate then guards the
//      throughput series.
#include "bench_common.hpp"
#include "rpc/fabric.hpp"
#include "sim/sync.hpp"
#include "workload/ior.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;
using core::Architecture;
using rpc::Payload;
using sim::Task;

namespace {

constexpr uint32_t kVictim = 1;  // never node 0: it hosts the MDS
constexpr sim::Time kKillAt = sim::sec(10);  // long after population
constexpr uint64_t kChunk = 1u << 20;

const char* scheme_name(pvfs::DistKind kind) {
  switch (kind) {
    case pvfs::DistKind::kMirror:
      return "mirror-2x";
    case pvfs::DistKind::kErasure:
      return "ec-4p2";
    default:
      return "plain";
  }
}

core::ClusterConfig scheme_config(pvfs::DistKind kind, uint32_t clients) {
  core::ClusterConfig cfg = paper_config(Architecture::kDirectPnfs, clients);
  cfg.distribution = kind;
  cfg.replicas = 2;
  cfg.ec_k = 4;
  cfg.ec_m = 2;
  return cfg;
}

struct WriteResult {
  double mbps = 0;
  std::string metrics_json;
};

WriteResult run_write(pvfs::DistKind kind, uint32_t clients, uint64_t bytes) {
  core::ClusterConfig cfg = scheme_config(kind, clients);
  workload::IorConfig icfg;
  icfg.write = true;
  icfg.bytes_per_client = bytes;
  icfg.block_size = 2 * kChunk;
  workload::IorWorkload w(icfg);
  core::Deployment d(cfg);
  const workload::RunResult r = run_workload(d, w);
  return {r.aggregate_mbps(), r.metrics_json};
}

Payload pattern(uint64_t base, uint64_t length) {
  std::vector<std::byte> v(length);
  for (uint64_t i = 0; i < length; ++i) {
    const uint64_t o = base + i;
    v[i] = static_cast<std::byte>((o * 167 + (o >> 13) * 11 + 5) & 0xFF);
  }
  return Payload::inline_bytes(std::move(v));
}

struct ReadResult {
  double mbps = 0;
  bool data_ok = false;
  bool population_done = false;
  uint64_t mds_fallbacks = 0;
  std::string metrics_json;
};

Task<void> populate_one(core::Deployment& d, size_t i, uint64_t bytes) {
  const uint64_t base = static_cast<uint64_t>(i) << 40;
  auto f = co_await d.client(i).open("/bench/f" + std::to_string(i), true);
  for (uint64_t off = 0; off < bytes; off += kChunk) {
    co_await f->write(off, pattern(base + off,
                                   std::min<uint64_t>(kChunk, bytes - off)));
  }
  co_await f->fsync();
  co_await f->close();
}

Task<void> read_one(core::Deployment& d, size_t client, size_t file,
                    uint64_t bytes, char& ok) {
  const uint64_t base = static_cast<uint64_t>(file) << 40;
  auto f =
      co_await d.client(client).open_read("/bench/f" + std::to_string(file));
  bool all = true;
  for (uint64_t off = 0; off < bytes; off += 2 * kChunk) {
    const uint64_t n = std::min<uint64_t>(2 * kChunk, bytes - off);
    Payload got = co_await f->read(off, n);
    if (!(got == pattern(base + off, n))) all = false;
  }
  try {
    co_await f->close();
  } catch (const std::exception&) {
    // Close-time attribute gathering may brush the dead daemon.
  }
  ok = all ? 1 : 0;
}

Task<void> degraded_scenario(core::Deployment& d, uint32_t n, uint64_t bytes,
                             bool kill, ReadResult& res,
                             std::vector<char>& ok, sim::Time& read_ns) {
  auto& sim = d.simulation();
  co_await d.mount_all();
  co_await d.client(0).mkdir("/bench");
  sim::WaitGroup wg(sim);
  for (uint32_t i = 0; i < n; ++i) wg.spawn(populate_one(d, i, bytes));
  co_await wg.wait();
  res.population_done = !kill || sim.now() < kKillAt;
  if (!res.population_done) co_return;
  if (kill) co_await sim.delay(kKillAt + sim::ms(500) - sim.now());

  // Cold clients n..2n-1 stream the files back concurrently.
  const sim::Time t0 = sim.now();
  sim::WaitGroup rg(sim);
  for (uint32_t i = 0; i < n; ++i) {
    rg.spawn(read_one(d, n + i, i, bytes, ok[i]));
  }
  co_await rg.wait();
  read_ns = sim.now() - t0;
}

/// Read-back throughput with (optionally) one storage node permanently
/// dead: the cold readers' bytes all flow through degraded reads or EC
/// reconstruction for the slices that lived on the victim.
ReadResult run_degraded_read(pvfs::DistKind kind, uint32_t clients,
                             uint64_t bytes, bool kill) {
  core::ClusterConfig cfg = scheme_config(kind, clients);
  cfg.clients = clients * 2;  // writers + cold readers
  if (kill) {
    // Fast-failure posture for a node that is never coming back (mirrors
    // `simulate --fault-ds-kill`): bounded deadlines, a hair-trigger
    // breaker that stays open, fast-failing meta-side size gathers.
    cfg.nfs_client.ds_timeout = sim::ms(200);
    cfg.nfs_client.ds_rpc_retries = 2;
    cfg.nfs_client.slice_retries = 1;
    cfg.nfs_client.breaker_threshold = 2;
    cfg.nfs_client.breaker_reset = sim::sec(600);
    cfg.nfs_client.mds_timeout = sim::ms(3000);
    cfg.pvfs_client.io_timeout = sim::ms(200);
    cfg.pvfs_client.io_retries = 1;
    cfg.faults.crash_service(kVictim, rpc::kNfsPort, kKillAt, sim::kNever);
    cfg.faults.crash_service(kVictim, rpc::kPvfsIoPort, kKillAt, sim::kNever);
  }

  core::Deployment d(cfg);
  ReadResult res;
  std::vector<char> ok(clients, 0);
  sim::Time read_ns = 0;
  d.simulation().spawn(
      degraded_scenario(d, clients, bytes, kill, res, ok, read_ns));
  d.simulation().run();

  res.data_ok = true;
  for (char c : ok) res.data_ok = res.data_ok && c != 0;
  for (size_t i = 0; i < cfg.clients; ++i) {
    if (auto* c = dynamic_cast<core::NfsFileSystemClient*>(&d.client(i))) {
      res.mds_fallbacks += c->native().stats().mds_fallbacks;
    }
  }
  if (read_ns > 0) {
    res.mbps = static_cast<double>(bytes) * clients /
               (static_cast<double>(read_ns) / 1e9) / 1e6;
  }
  res.metrics_json = d.metrics_json();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = flag_present(argc, argv, "--smoke");
  const bool quick = smoke || flag_present(argc, argv, "--quick");
  const uint64_t bytes = quick ? 4 * kChunk : 16 * kChunk;
  const auto clients =
      quick ? std::vector<uint32_t>{2, 4} : std::vector<uint32_t>{2, 4, 6, 8};
  const pvfs::DistKind kinds[] = {pvfs::DistKind::kStripe,
                                  pvfs::DistKind::kMirror,
                                  pvfs::DistKind::kErasure};

  std::printf("== Ablation: redundancy schemes, sequential I/O + permanent "
              "DS loss (Direct-pNFS) ==\n");
  BenchRecorder rec("ablation_redundancy",
                    arg_value(argc, argv, "--out-dir", ""));

  bool gate_ok = true;
  std::vector<Series> write_series, read_series;
  for (pvfs::DistKind kind : kinds) {
    write_series.push_back({scheme_name(kind), {}});
  }
  for (pvfs::DistKind kind : {pvfs::DistKind::kMirror,
                              pvfs::DistKind::kErasure}) {
    read_series.push_back({std::string(scheme_name(kind)) + "-healthy", {}});
    read_series.push_back({std::string(scheme_name(kind)) + "-degraded", {}});
  }

  for (size_t row = 0; row < clients.size(); ++row) {
    const uint32_t n = clients[row];
    for (size_t k = 0; k < 3; ++k) {
      const WriteResult w = run_write(kinds[k], n, bytes);
      write_series[k].values.push_back(w.mbps);
      rec.add(std::string("write-") + scheme_name(kinds[k]), "direct-pnfs", n,
              w.mbps, "MB/s", w.metrics_json);
    }
    size_t col = 0;
    for (pvfs::DistKind kind : {pvfs::DistKind::kMirror,
                                pvfs::DistKind::kErasure}) {
      for (bool kill : {false, true}) {
        const ReadResult r = run_degraded_read(kind, n, bytes, kill);
        read_series[col].values.push_back(r.mbps);
        rec.add(std::string(kill ? "degraded-read-" : "healthy-read-") +
                    scheme_name(kind),
                "direct-pnfs", n, r.mbps, "MB/s", r.metrics_json);
        if (!r.population_done) {
          std::fprintf(stderr, "FAIL: %s %u clients: population overran the "
                       "scripted kill time\n", scheme_name(kind), n);
          gate_ok = false;
        }
        if (!r.data_ok) {
          std::fprintf(stderr, "FAIL: %s %u clients (kill=%d): read-back "
                       "not byte-identical\n", scheme_name(kind), n, kill);
          gate_ok = false;
        }
        if (kill && r.mds_fallbacks != 0) {
          std::fprintf(stderr, "FAIL: %s %u clients: %llu MDS fallbacks "
                       "(must be 0 — redundancy owns degraded bytes)\n",
                       scheme_name(kind), n,
                       static_cast<unsigned long long>(r.mds_fallbacks));
          gate_ok = false;
        }
        ++col;
      }
    }
  }

  print_table("Sequential write throughput by redundancy scheme", "clients",
              clients, write_series, "aggregate MB/s");
  print_table("Cold read-back: healthy vs one DS permanently dead",
              "clients", clients, read_series, "aggregate MB/s");
  rec.flush();
  return gate_ok ? 0 : 1;
}
