// Figure 7: IOR aggregate read throughput (warm server caches).
//   (a) separate files, large blocks   (b) single file, large blocks
//   (c) separate files, 8 KB blocks    (d) single file, 8 KB blocks
#include "bench_common.hpp"
#include "workload/ior.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;
using core::Architecture;

namespace {

void sweep(BenchRecorder& rec, const char* title, const char* figure,
           bool single_file, uint64_t block_size,
           const std::vector<Architecture>& archs,
           const std::vector<uint32_t>& clients, uint64_t bytes_per_client) {
  std::vector<Series> series;
  for (Architecture arch : archs) {
    Series s;
    s.label = core::architecture_name(arch);
    for (uint32_t n : clients) {
      workload::IorConfig ior;
      ior.write = false;
      ior.single_file = single_file;
      ior.block_size = block_size;
      ior.bytes_per_client = bytes_per_client;
      core::Deployment d(paper_config(arch, n));
      workload::IorWorkload w(ior);
      const workload::RunResult r = run_workload(d, w);
      s.values.push_back(r.aggregate_mbps());
      rec.add(figure, s.label, n, r.aggregate_mbps(), "MB/s", r.metrics_json);
    }
    series.push_back(std::move(s));
  }
  print_table(title, "clients", clients, series, "aggregate MB/s");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = flag_present(argc, argv, "--smoke");
  const bool quick = smoke || flag_present(argc, argv, "--quick");
  const auto clients = smoke ? std::vector<uint32_t>{1, 4} : client_sweep(quick);
  const uint64_t bytes = smoke ? 10'000'000 : quick ? 100'000'000 : 500'000'000;
  const uint64_t small_bytes = quick ? 50'000'000 : 500'000'000;

  const std::vector<Architecture> all = {
      Architecture::kDirectPnfs, Architecture::kNativePvfs,
      Architecture::kPnfs2Tier, Architecture::kPnfs3Tier,
      Architecture::kPlainNfs};

  std::printf("== Figure 7: IOR aggregate read throughput (warm caches) ==\n");
  BenchRecorder rec("fig7_read", arg_value(argc, argv, "--out-dir", ""));
  sweep(rec, "Fig 7a: read, separate files, 2 MB blocks", "7a", false, 2 << 20,
        all, clients, bytes);
  if (smoke) {
    // ctest smoke (label bench-smoke): all five architectures, tiny sweep,
    // Figure 7a only.
    rec.flush();
    return 0;
  }
  sweep(rec, "Fig 7b: read, single file, 2 MB blocks", "7b", true, 2 << 20,
        all, clients, bytes);
  sweep(rec, "Fig 7c: read, separate files, 8 KB blocks", "7c", false,
        8 * 1024, all, clients, small_bytes);
  sweep(rec, "Fig 7d: read, single file, 8 KB blocks", "7d", true, 8 * 1024,
        all, clients, small_bytes);
  rec.flush();
  return 0;
}
