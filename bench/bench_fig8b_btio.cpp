// Figure 8b: NPB 2.4 BT-IO class A — total running time (lower is better)
// for 1, 4, and 9 clients, Direct-pNFS vs PVFS2.
#include "bench_common.hpp"
#include "workload/btio.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;
using core::Architecture;

int main(int argc, char** argv) {
  const bool quick = flag_present(argc, argv, "--quick");
  const std::vector<uint32_t> clients = {1, 4, 9};
  const std::vector<Architecture> archs = {Architecture::kDirectPnfs,
                                           Architecture::kNativePvfs};

  std::printf("== Figure 8b: BTIO class A running time ==\n");
  std::vector<Series> series;
  for (Architecture arch : archs) {
    Series s;
    s.label = core::architecture_name(arch);
    for (uint32_t n : clients) {
      core::Deployment d(paper_config(arch, n));
      workload::BtioConfig cfg;
      if (quick) {
        cfg.file_bytes = 40'000'000;
        cfg.time_steps = 40;
        cfg.compute_total = sim::sec(90);
      }
      workload::BtioWorkload w(cfg);
      s.values.push_back(run_workload(d, w).elapsed_seconds);
    }
    series.push_back(std::move(s));
  }
  print_table("Fig 8b: BTIO class A (200 steps, 400 MB checkpoint file)",
              "clients", clients, series, "seconds (lower is better)");
  return 0;
}
