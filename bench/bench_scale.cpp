// Thousand-client open-loop scale sweep: how much simulated load the event
// core pushes per second of host wall-clock.
//
// Each sweep point replays the *same* seeded open-loop arrival schedule
// (Poisson arrivals, 4-tenant mix, ephemeral 4-op sessions) twice:
//
//   scale-core   calendar-queue event core + frame/buffer pooling +
//                network fast path (the default)
//   legacy-core  binary-heap event core, pooling off, fast path off —
//                the event core this PR replaced (ClusterConfig::legacy_core)
//
// The figure of merit is simulated client-seconds per wall-second: the
// integral of in-flight sessions over simulated time, divided by the host
// time the run took.  Two speedups come out of each sweep point:
//
//   stack_speedup   scale-core over legacy-core on the full protocol stack.
//                   Amdahl-capped: most of a full-stack wall-second goes to
//                   the NFS/RPC machinery both cores share (XDR, dispatch,
//                   tracing, hashtables), so swapping the event core moves
//                   this far less than it moves the core itself.
//   speedup         the event-core replay.  The point's event population —
//                   pending depth sized from the measured peak concurrency,
//                   the point's own measured same-tick/wheel/overflow push
//                   mix, frame-sized allocation churn with interleaved
//                   lifetimes — is replayed through the bare core: calendar
//                   queue + frame pooling vs the pre-PR binary heap +
//                   malloc.  Both replays push the same simulated
//                   client-seconds, so the rate ratio is the wall ratio of
//                   the machinery this PR actually replaced.
//
// Offered-vs-delivered sojourn percentiles (scheduled arrival to
// completion, so backlog shows up as latency) are recorded alongside but
// not gated — latency is not a higher-is-better series.
//
// Contracts checked, not just measured:
//   1. Determinism: the smallest point runs twice on the scale core and
//      must produce bit-identical session counts, ops, peak concurrency,
//      and sojourn sums.  Replays must realize the identical dispatch
//      order on both queue kinds (the (time, seq) total-order contract).
//   2. Sustained concurrency: the big point must hold >= 1000 sessions in
//      flight at its peak.
//   3. Throughput: at the big point the event-core replay must beat the
//      pre-PR core >= 1.5x and the full stack must not have regressed
//      (>= 1.05x).  The original 10x target did not survive measurement:
//      at the real 1000-client operating point (~16k pending events, 39%
//      same-tick / 60% wheel mix) the pre-PR heap is L2-resident and costs
//      ~160 ns/event against the calendar core's ~75 ns, and the full
//      stack is Amdahl-bound by the protocol machinery both cores share —
//      see EXPERIMENTS.md "Known deviations".
//
// Wall-clock rates are host-noise-sensitive; the delta gate runs with a
// loose threshold (bench/CMakeLists.txt) and the in-binary bars have
// margin behind them (measured: core replay 2.1-2.3x, stack 1.3-1.4x).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <coroutine>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/event_queue.hpp"
#include "sim/frame_pool.hpp"
#include "workload/openloop.hpp"

using namespace dpnfs;
using namespace dpnfs::bench;

namespace {

struct Point {
  uint32_t target_concurrency;  // sweep label (and the sustained-load bar)
  uint32_t client_nodes;
  uint32_t storage_nodes;
  double rate_per_sec;      // offered session arrival rate
  double duration_seconds;  // arrival window
};

struct PointResult {
  workload::OpenLoopResult ol;
  double wall_seconds = 0;
  uint64_t events = 0;
  sim::EventQueue::PushMix mix;  // same-tick / wheel / overflow shares
  double rate() const {
    return wall_seconds > 0 ? ol.client_seconds / wall_seconds : 0;
  }
};

PointResult run_point(const Point& pt, bool legacy) {
  core::ClusterConfig cfg =
      paper_config(core::Architecture::kDirectPnfs, pt.client_nodes);
  cfg.storage_nodes = pt.storage_nodes;
  cfg.legacy_core = legacy;
  cfg.tenants = 4;
  // Production sampled tracing (bench_obs_overhead's recommended mode), not
  // the retain-everything default: at thousands of sessions full span
  // retention spends a quarter of the wall on evictions in *both* cores,
  // burying the event-core comparison this bench exists to make.
  cfg.trace_sample_rate = 0.01;
  cfg.trace_slo_threshold = sim::ms(500);

  workload::OpenLoopConfig ol;
  ol.rate_per_sec = pt.rate_per_sec;
  ol.duration = sim::Duration(static_cast<int64_t>(pt.duration_seconds * 1e9));
  ol.tenant_weights = {4, 3, 2, 1};
  ol.ops_per_session = 4;
  ol.bytes_per_op = 256 * 1024;
  ol.read_fraction = 0.5;
  ol.file_bytes = 16ull << 20;

  core::Deployment d(cfg);
  PointResult r;
  const auto t0 = std::chrono::steady_clock::now();
  r.ol = workload::run_open_loop(d, ol);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.events = d.simulation().events_processed();
  r.mix = d.simulation().queue_push_mix();
  return r;
}

// --- Event-core replay -----------------------------------------------------
//
// Drives the bare event core — the queue + frame-allocator pair this PR
// replaced — with the sweep point's event population: a standing pending
// set sized from the measured peak concurrency (each in-flight session
// holds ~2 pending events: its own next wakeup plus a spawned leg), a delay
// mix matching what the protocol stack generates (mostly same-tick wakeups,
// the rest inside the ~8 ms wheel horizon, a tail beyond it), and one
// frame-sized allocation per two events with interleaved lifetimes, the way
// spawned coroutines churn frames.  Each op is one schedule -> dispatch
// cycle; coroutine bodies are excluded on purpose (they are compiler
// machinery both cores share, not part of the replaced component).
//
// The same-tick mix is where the cores differ most, and honestly so: in a
// binary heap a wakeup at the current instant is the new minimum, so its
// push sifts up the full log(n) path and the following pop sifts down
// another — the pre-PR core paid 2 log(n) per semaphore hand-off.  The
// calendar core's FIFO ring makes the same hand-off O(1).

struct ReplayLcg {
  uint64_t s;
  uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 17;
  }
};

// Per-mille thresholds derived from a measured PushMix: [0, imm) same-tick,
// [imm, imm+wheel) within the wheel horizon, the rest overflow.
struct ReplayMix {
  uint64_t imm_cut = 550;
  uint64_t wheel_cut = 950;
  explicit ReplayMix(const sim::EventQueue::PushMix& m) {
    const uint64_t total = m.immediate + m.wheel + m.overflow;
    if (total > 0) {
      imm_cut = m.immediate * 1000 / total;
      wheel_cut = imm_cut + m.wheel * 1000 / total;
    }
  }
};

sim::Duration replay_delay(uint64_t r, const ReplayMix& mix) {
  const uint64_t cls = r % 1000;
  const uint64_t v = r / 1000;
  if (cls < mix.imm_cut) return 0;  // same-tick (semaphore handoff, yield)
  if (cls < mix.wheel_cut) {        // wheel: network/disk/CPU completions
    return static_cast<sim::Duration>(256 + v % (8 * 1000 * 1000));
  }
  // Overflow: timers well past the horizon.
  return sim::ms(8) + static_cast<sim::Duration>(v % uint64_t(sim::ms(192)));
}

struct ReplayResult {
  double wall_seconds = 0;
  uint64_t events = 0;
  sim::Time end_time = 0;  // simulated clock after the last dispatch
};

ReplayResult run_replay(sim::QueueKind kind, bool pooled,
                        const ReplayMix& mix, uint32_t population,
                        uint64_t ops) {
  const bool frames_were = sim::FramePool::enabled();
  sim::FramePool::set_enabled(pooled);

  sim::EventQueue q(kind);
  ReplayLcg rng{0x5CA1AB1Eu};
  const auto handle = std::coroutine_handle<>::from_address(&rng);  // opaque
  uint64_t seq = 0;
  sim::Time now = 0;
  for (uint32_t i = 0; i < population; ++i) {
    q.push(replay_delay(rng.next(), mix), seq++, handle);
  }

  // Frames outlive many events (a spawned leg's frame lives until its delay
  // fires), so frees trail allocations by a window instead of pairing LIFO.
  constexpr size_t kLive = 1024;
  void* live[kLive] = {};
  size_t live_at = 0;

  ReplayResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t op = 0; op < ops; ++op) {
    const sim::Event e = q.pop();
    now = e.time;
    if ((op & 1) != 0) {
      void*& slot = live[live_at++ & (kLive - 1)];
      if (slot != nullptr) sim::FramePool::deallocate(slot, 0);
      // Frame sizes span several classes, like real coroutine frames.
      slot = sim::FramePool::allocate(64 + (rng.next() % 8) * 64);
    }
    q.push(now + replay_delay(rng.next(), mix), seq++, e.handle);
  }
  const auto t1 = std::chrono::steady_clock::now();

  for (void* p : live) {
    if (p != nullptr) sim::FramePool::deallocate(p, 0);
  }
  sim::FramePool::set_enabled(frames_were);
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.events = ops;
  r.end_time = now;
  return r;
}

bool same_sim_result(const workload::OpenLoopResult& a,
                     const workload::OpenLoopResult& b) {
  return a.sessions == b.sessions && a.ops == b.ops &&
         a.app_bytes == b.app_bytes && a.peak_concurrency == b.peak_concurrency &&
         a.elapsed_seconds == b.elapsed_seconds &&
         a.client_seconds == b.client_seconds &&
         a.sojourn_seconds.count() == b.sojourn_seconds.count() &&
         a.sojourn_seconds.sum() == b.sojourn_seconds.sum();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = flag_present(argc, argv, "--smoke") ||
                     flag_present(argc, argv, "--quick");
  BenchRecorder rec("scale", arg_value(argc, argv, "--out-dir", ""));

  // The offered rates saturate the cluster so backlog (and thus in-flight
  // sessions) climbs through the window — that is what an open-loop
  // thousand-client population does to a file system that cannot keep up.
  std::vector<Point> points = {
      {100, 8, 6, 1500, 1.0},
      {1000, 16, 16, 4000, 2.0},
  };
  if (!smoke) points.push_back({4000, 32, 32, 12000, 3.0});

  bool ok = true;

  // Contract 1: determinism on the smallest point (scale core, same seed).
  {
    const PointResult a = run_point(points[0], /*legacy=*/false);
    const PointResult b = run_point(points[0], /*legacy=*/false);
    if (!same_sim_result(a.ol, b.ol)) {
      std::fprintf(stderr,
                   "FAIL: same-seed open-loop runs diverged on the scale "
                   "core (%" PRIu64 "/%" PRIu64 " sessions, %.9g/%.9g "
                   "client-s)\n",
                   a.ol.sessions, b.ol.sessions, a.ol.client_seconds,
                   b.ol.client_seconds);
      ok = false;
    }
  }

  std::vector<Series> series = {{"scale-core", {}},
                                {"legacy-core", {}},
                                {"core-speedup", {}},
                                {"stack-speedup", {}},
                                {"peak-conc", {}}};
  std::vector<uint32_t> xs;

  for (const Point& pt : points) {
    const PointResult scale = run_point(pt, /*legacy=*/false);
    const PointResult legacy = run_point(pt, /*legacy=*/true);
    const double stack_speedup =
        legacy.rate() > 0 ? scale.rate() / legacy.rate() : 0;

    // Event-core replay, shaped like this point: the pending population
    // follows the measured peak concurrency, the op budget the measured
    // event total.
    const uint32_t population = static_cast<uint32_t>(
        std::max<uint64_t>(1000, 2 * scale.ol.peak_concurrency));
    const uint64_t ops = std::max<uint64_t>(10000, scale.events);
    const ReplayMix mix(scale.mix);
    const ReplayResult core_scale = run_replay(
        sim::QueueKind::kCalendar, /*pooled=*/true, mix, population, ops);
    const ReplayResult core_legacy = run_replay(
        sim::QueueKind::kBinaryHeap, /*pooled=*/false, mix, population, ops);
    if (core_scale.end_time != core_legacy.end_time) {
      std::fprintf(stderr,
                   "FAIL: replay dispatch order diverged across queue kinds "
                   "(end clock %" PRId64 " vs %" PRId64 ")\n",
                   core_scale.end_time, core_legacy.end_time);
      ok = false;
    }
    // Both replays push the same simulated workload (this point's
    // client-seconds) through the bare core, so rate ratio == wall ratio.
    const double core_rate_scale = core_scale.wall_seconds > 0
        ? scale.ol.client_seconds / core_scale.wall_seconds : 0;
    const double core_rate_legacy = core_legacy.wall_seconds > 0
        ? scale.ol.client_seconds / core_legacy.wall_seconds : 0;
    const double core_speedup =
        core_rate_legacy > 0 ? core_rate_scale / core_rate_legacy : 0;

    xs.push_back(pt.target_concurrency);
    series[0].values.push_back(scale.rate());
    series[1].values.push_back(legacy.rate());
    series[2].values.push_back(core_speedup);
    series[3].values.push_back(stack_speedup);
    series[4].values.push_back(static_cast<double>(scale.ol.peak_concurrency));

    std::printf(
        "point %u: %" PRIu64 " sessions, peak %" PRIu64
        " in flight, scale %.1f client-s/s (%.2fs wall, %" PRIu64
        " events), legacy %.1f client-s/s (%.2fs wall), stack speedup "
        "%.1fx\n",
        pt.target_concurrency, scale.ol.sessions, scale.ol.peak_concurrency,
        scale.rate(), scale.wall_seconds, scale.events, legacy.rate(),
        legacy.wall_seconds, stack_speedup);
    std::printf(
        "  core replay (population %u, %" PRIu64
        " events, mix %" PRIu64 "/%" PRIu64
        "/1000 same-tick/wheel): calendar+pool %.0f ev/ms, heap+malloc "
        "%.0f ev/ms, speedup %.1fx\n",
        population, core_scale.events, mix.imm_cut,
        mix.wheel_cut - mix.imm_cut,
        core_scale.wall_seconds > 0
            ? core_scale.events / (core_scale.wall_seconds * 1e3) : 0,
        core_legacy.wall_seconds > 0
            ? core_legacy.events / (core_legacy.wall_seconds * 1e3) : 0,
        core_speedup);

    rec.add("rate", "scale-core", pt.target_concurrency, scale.rate(),
            "client-s/s", "");
    rec.add("rate", "legacy-core", pt.target_concurrency, legacy.rate(),
            "client-s/s", "");
    rec.add("core_rate", "scale-core", pt.target_concurrency, core_rate_scale,
            "client-s/s", "");
    rec.add("core_rate", "legacy-core", pt.target_concurrency,
            core_rate_legacy, "client-s/s", "");
    rec.add("speedup", "event-core", pt.target_concurrency, core_speedup, "x",
            "");
    rec.add("stack_speedup", "direct-pnfs", pt.target_concurrency,
            stack_speedup, "x", "");
    // Ungated context records (absent from the baseline on purpose: latency
    // and event totals are not higher-is-better series).
    rec.add("p50_sojourn", "scale-core", pt.target_concurrency,
            scale.ol.sojourn_seconds.p50(), "s", "");
    rec.add("p99_sojourn", "scale-core", pt.target_concurrency,
            scale.ol.sojourn_seconds.p99(), "s", "");
    rec.add("p50_sojourn", "legacy-core", pt.target_concurrency,
            legacy.ol.sojourn_seconds.p50(), "s", "");
    rec.add("p99_sojourn", "legacy-core", pt.target_concurrency,
            legacy.ol.sojourn_seconds.p99(), "s", "");
    rec.add("peak_concurrency", "scale-core", pt.target_concurrency,
            static_cast<double>(scale.ol.peak_concurrency), "sessions", "");
    rec.add("events_per_wall_s", "scale-core", pt.target_concurrency,
            scale.wall_seconds > 0 ? scale.events / scale.wall_seconds : 0,
            "ev/s", "");

    // Contract 2 + 3 on the >= 1000-client point.
    if (pt.target_concurrency >= 1000) {
      if (scale.ol.peak_concurrency < 1000) {
        std::fprintf(stderr,
                     "FAIL: point %u peaked at %" PRIu64
                     " concurrent sessions (< 1000)\n",
                     pt.target_concurrency, scale.ol.peak_concurrency);
        ok = false;
      }
      if (core_speedup < 1.5) {
        std::fprintf(stderr,
                     "FAIL: point %u event-core replay speedup %.2fx "
                     "(< 1.5x over the pre-PR core)\n",
                     pt.target_concurrency, core_speedup);
        ok = false;
      }
      if (stack_speedup < 1.05) {
        std::fprintf(stderr,
                     "FAIL: point %u full-stack speedup %.2fx (< 1.05x "
                     "over the pre-PR core)\n",
                     pt.target_concurrency, stack_speedup);
        ok = false;
      }
    }
  }

  print_table("Open-loop scale sweep", "clients", xs, series,
              "client-s/s (speedups: x)");
  rec.flush();
  return ok ? 0 : 1;
}
