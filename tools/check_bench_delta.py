#!/usr/bin/env python3
"""Guard bench throughput against silent regressions.

Compares a freshly produced BENCH_*.json recorder file (see
tools/check_metrics_schema.py for the shape) against a committed baseline
from the same smoke sweep and fails when any (figure, architecture, clients)
series point regresses by more than the threshold.  Values are throughputs
(MB/s): higher is better, so only downward moves fail.  Improvements and
new series points are reported but never fatal — refresh the baseline
(copy the new BENCH file over tools/bench_baselines/) when a change moves
the numbers on purpose.

Usage:
  check_bench_delta.py FRESH.json BASELINE.json [--threshold 0.20]
"""

import json
import sys


def load_records(filename):
    try:
        with open(filename, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{filename}: unreadable or not JSON: {e}")
    if not isinstance(doc, dict) or "records" not in doc:
        sys.exit(f"{filename}: not a bench recorder file (no 'records')")
    out = {}
    for rec in doc["records"]:
        key = (rec.get("figure"), rec.get("architecture"), rec.get("clients"))
        out[key] = (float(rec.get("value", 0.0)), rec.get("unit", ""))
    return out


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = 0.20
    for a in argv[1:]:
        if a.startswith("--threshold"):
            threshold = float(a.split("=", 1)[1]) if "=" in a else threshold
    if len(args) != 2:
        sys.exit(__doc__)
    fresh_file, base_file = args
    fresh = load_records(fresh_file)
    base = load_records(base_file)

    failures = []
    print(f"{'figure':8} {'architecture':14} {'clients':>7} "
          f"{'baseline':>10} {'fresh':>10} {'delta':>8}")
    for key in sorted(base, key=lambda k: (str(k[0]), str(k[1]), k[2] or 0)):
        figure, arch, clients = key
        base_val, unit = base[key]
        if key not in fresh:
            print(f"{figure:8} {arch:14} {clients:>7} {base_val:>10.2f} "
                  f"{'MISSING':>10}")
            failures.append(f"{figure}/{arch}/{clients}: missing from "
                            f"{fresh_file}")
            continue
        fresh_val, _ = fresh[key]
        delta = (fresh_val - base_val) / base_val if base_val > 0 else 0.0
        mark = ""
        if base_val > 0 and fresh_val < base_val * (1.0 - threshold):
            mark = "  << REGRESSION"
            failures.append(f"{figure}/{arch}/{clients}: {base_val:.2f} -> "
                            f"{fresh_val:.2f} {unit} ({delta:+.1%})")
        print(f"{figure:8} {arch:14} {clients:>7} {base_val:>10.2f} "
              f"{fresh_val:>10.2f} {delta:>+7.1%}{mark}")
    for key in sorted(set(fresh) - set(base),
                      key=lambda k: (str(k[0]), str(k[1]), k[2] or 0)):
        print(f"{key[0]:8} {key[1]:14} {key[2]:>7} {'(new)':>10} "
              f"{fresh[key][0]:>10.2f}")

    if failures:
        print(f"\n{len(failures)} series point(s) regressed more than "
              f"{threshold:.0%} vs {base_file}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nOK: no series point regressed more than {threshold:.0%}.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
