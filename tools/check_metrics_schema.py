#!/usr/bin/env python3
"""Validate dpnfs observability JSON against the documented schema.

Two document shapes are accepted (see docs/observability.md):

  1. A RunResult::metrics_json export:
       {"architecture": str, "sim_time_ns": int,
        "nodes": {node: {component: {"counters": {...}, "gauges": {...},
                                     "histograms": {...}}}},
        "trace": {...aggregate...}}

  2. A BENCH_*.json recorder file:
       {"bench": str, "records": [{"figure": str, "architecture": str,
                                   "clients": int, "value": num,
                                   "unit": str, "metrics": <shape 1>}]}

Usage:
  check_metrics_schema.py FILE.json [FILE2.json ...]
  check_metrics_schema.py --run /path/to/bench_micro
      (spawns `bench_micro --metrics-smoke=<tmp>` and validates the output)
"""

import json
import os
import subprocess
import sys
import tempfile

# Counters every client.recovery component must export (docs/failures.md).
RECOVERY_COUNTERS = ("retries", "fallbacks", "breaker_trips")

# Counters every client.replay component (unstable-write replay after a
# server restart) must export (docs/failures.md "Restart semantics").  NFS
# clients additionally export session_recoveries; the native PVFS client
# does not (it has no sessions), so that one stays optional.
REPLAY_COUNTERS = ("verifier_mismatches", "replayed_extents",
                   "replayed_bytes")

# Counters every client.redundancy component must export (docs/failures.md
# "Degraded mode"): replica rerouting, degraded reads/writes, and erasure
# reconstruction under permanent data-server loss.
REDUNDANCY_COUNTERS = ("replica_reroutes", "degraded_reads",
                       "degraded_read_bytes", "ec_reconstructions",
                       "degraded_writes", "degraded_commits")

# Counters the MDS background-rebuild service exports (docs/failures.md
# "Background rebuild"); the component only exists when the rebuild service
# is enabled, but when present the set is fixed.
REBUILD_COUNTERS = ("dses_declared_dead", "rebuilds_started",
                    "rebuilds_completed", "objects_rebuilt",
                    "bytes_rebuilt", "objects_failed")

# Counters every client.sched component (per-DS write-back scheduler) must
# export (docs/observability.md).  Its gauges are dynamic — one
# queue_depth/queue_depth_peak/window_inflight triple per data server the
# client has dispatched to, suffixed "_mds" or "_ds<N>".
SCHED_COUNTERS = ("dispatched_writes", "dispatched_bytes",
                  "coalesced_extents", "coalesced_bytes",
                  "vectored_writes", "vectored_regions", "vectored_bytes")
SCHED_GAUGE_PREFIXES = ("queue_depth_", "queue_depth_peak_",
                        "window_inflight_")

TRACE_KEYS = {
    "traces_started": int,
    "rpc_hops_total": int,
    "mean_hops_per_trace": (int, float),
    "max_hops_per_trace": int,
    "spans_recorded": int,
    "spans_dropped": int,
    "hop_traces_seen": int,
    "hop_traces_evicted": int,
    # bool, not int: json.load never produces Python bools from 0/1, and
    # isinstance(True, int) is True — the explicit bool type catches an
    # exporter regressing to 0/1.
    "hop_histogram_complete": bool,
    "hops_histogram": dict,
    "sample_rate": (int, float),
    "traces_sampled": int,
    "traces_promoted": int,
    "spans_sampled_out": int,
}

# Streaming percentile digest export (util::PercentileDigest::to_json):
# fixed-memory log-bucketed summary, no per-sample data.
DIGEST_KEYS = {
    "count": int,
    "sum": (int, float),
    "mean": (int, float),
    "min": (int, float),
    "max": (int, float),
    "p50": (int, float),
    "p90": (int, float),
    "p99": (int, float),
    "p999": (int, float),
}

# Per-op-class entry in the top-level "slo" section.
SLO_OP_KEYS = {
    "requests": int,
    "errors": int,
    "over_slo": int,
}

# One tenant's resource bill (the "tenants" section, docs/observability.md).
TENANT_STAT_KEYS = {
    "rpcs": int,
    "wire_bytes_in": int,
    "wire_bytes_out": int,
    "queue_ns": int,
    "service_ns": int,
    "disk_ns": int,
    "read_bytes": int,
    "write_bytes": int,
    "errors": int,
    "over_slo": int,
}

HEALTH_STATES = ("ok", "degraded", "critical")

errors = []


def err(path, msg):
    errors.append(f"{path}: {msg}")


def check_type(path, value, types, what):
    if not isinstance(value, types):
        err(path, f"{what} should be {types}, got {type(value).__name__}")
        return False
    return True


def check_histogram(path, h):
    if not check_type(path, h, dict, "histogram"):
        return
    for key, types in (("count", int), ("sum", (int, float)),
                       ("mean", (int, float)), ("min", (int, float)),
                       ("max", (int, float)), ("boundaries", list),
                       ("counts", list)):
        if key not in h:
            err(path, f"missing histogram key '{key}'")
        else:
            check_type(f"{path}.{key}", h[key], types, key)
    bounds = h.get("boundaries")
    counts = h.get("counts")
    if isinstance(bounds, list) and isinstance(counts, list):
        # One implicit overflow bucket beyond the last boundary.
        if len(counts) != len(bounds) + 1:
            err(path, f"len(counts)={len(counts)} != len(boundaries)+1="
                      f"{len(bounds) + 1}")
        if isinstance(h.get("count"), int) and sum(counts) != h["count"]:
            err(path, f"sum(counts)={sum(counts)} != count={h['count']}")


def check_recovery_component(path, comp):
    """The failure-recovery component has a fixed counter contract."""
    counters = comp.get("counters", {})
    if not isinstance(counters, dict):
        return  # already reported by check_component
    for name in RECOVERY_COUNTERS:
        if name not in counters:
            err(path, f"client.recovery missing counter '{name}'")
        elif not isinstance(counters[name], int):
            err(f"{path}.counters.{name}",
                f"recovery counter should be int, got "
                f"{type(counters[name]).__name__}")


def check_replay_component(path, comp):
    """Crash-recovery replay accounting has a fixed counter contract."""
    counters = comp.get("counters", {})
    if not isinstance(counters, dict):
        return  # already reported by check_component
    for name in REPLAY_COUNTERS:
        if name not in counters:
            err(path, f"client.replay missing counter '{name}'")
        elif not isinstance(counters[name], int):
            err(f"{path}.counters.{name}",
                f"replay counter should be int, got "
                f"{type(counters[name]).__name__}")


def check_counter_set(path, comp, component_name, names):
    """Fixed counter contract shared by the redundancy/rebuild components."""
    counters = comp.get("counters", {})
    if not isinstance(counters, dict):
        return  # already reported by check_component
    for name in names:
        if name not in counters:
            err(path, f"{component_name} missing counter '{name}'")
        elif not isinstance(counters[name], int):
            err(f"{path}.counters.{name}",
                f"{component_name} counter should be int, got "
                f"{type(counters[name]).__name__}")


def check_sched_component(path, comp):
    """The per-DS write-back scheduler: fixed counters, dynamic per-DS
    gauges (one depth/peak/inflight triple per data server dispatched to)."""
    counters = comp.get("counters", {})
    if isinstance(counters, dict):
        for name in SCHED_COUNTERS:
            if name not in counters:
                err(path, f"client.sched missing counter '{name}'")
            elif not isinstance(counters[name], int):
                err(f"{path}.counters.{name}",
                    f"sched counter should be int, got "
                    f"{type(counters[name]).__name__}")
    gauges = comp.get("gauges", {})
    if isinstance(gauges, dict):
        for name in gauges:
            if not any(name.startswith(p) for p in SCHED_GAUGE_PREFIXES):
                err(f"{path}.gauges.{name}",
                    "client.sched gauge should match queue_depth_*/"
                    "queue_depth_peak_*/window_inflight_*")


def check_digest(path, d):
    if not check_type(path, d, dict, "digest"):
        return
    for key, types in DIGEST_KEYS.items():
        if key not in d:
            err(path, f"missing digest key '{key}'")
        elif isinstance(d[key], bool) or not isinstance(d[key], types):
            err(f"{path}.{key}", f"digest {key} should be {types}, got "
                                 f"{type(d[key]).__name__}")


def check_component(path, comp):
    if not check_type(path, comp, dict, "component"):
        return
    for section in ("counters", "gauges", "histograms", "digests"):
        if section not in comp:
            err(path, f"missing section '{section}'")
            continue
        if not check_type(f"{path}.{section}", comp[section], dict, section):
            continue
        for name, value in comp[section].items():
            p = f"{path}.{section}.{name}"
            if section == "counters":
                check_type(p, value, int, "counter")
            elif section == "gauges":
                check_type(p, value, (int, float), "gauge")
            elif section == "digests":
                check_digest(p, value)
            else:
                check_histogram(p, value)


def check_metrics_doc(path, doc):
    if not check_type(path, doc, dict, "metrics document"):
        return
    for key in ("architecture", "sim_time_ns", "nodes", "trace"):
        if key not in doc:
            err(path, f"missing top-level key '{key}'")
    check_type(f"{path}.architecture", doc.get("architecture", ""), str,
               "architecture")
    check_type(f"{path}.sim_time_ns", doc.get("sim_time_ns", 0), int,
               "sim_time_ns")

    nodes = doc.get("nodes", {})
    if check_type(f"{path}.nodes", nodes, dict, "nodes") and not nodes:
        err(f"{path}.nodes", "no nodes recorded")
    for node, components in nodes.items():
        if not check_type(f"{path}.nodes.{node}", components, dict, "node"):
            continue
        # Every NFS client registers its write-back scheduler and its
        # unstable-write replay accounting alongside its cache component at
        # construction (the native PVFS client registers client.replay on
        # its own).
        if "client.cache" in components and "client.sched" not in components:
            err(f"{path}.nodes.{node}", "client node missing client.sched")
        if "client.cache" in components and "client.replay" not in components:
            err(f"{path}.nodes.{node}", "client node missing client.replay")
        if ("client.cache" in components
                and "client.redundancy" not in components):
            err(f"{path}.nodes.{node}", "client node missing client.redundancy")
        for comp, body in components.items():
            check_component(f"{path}.nodes.{node}.{comp}", body)
            if comp == "client.recovery" and isinstance(body, dict):
                check_recovery_component(f"{path}.nodes.{node}.{comp}", body)
            if comp == "client.sched" and isinstance(body, dict):
                check_sched_component(f"{path}.nodes.{node}.{comp}", body)
            if comp == "client.replay" and isinstance(body, dict):
                check_replay_component(f"{path}.nodes.{node}.{comp}", body)
            if comp == "client.redundancy" and isinstance(body, dict):
                check_counter_set(f"{path}.nodes.{node}.{comp}", body,
                                  "client.redundancy", REDUNDANCY_COUNTERS)
            if comp == "mds.rebuild" and isinstance(body, dict):
                check_counter_set(f"{path}.nodes.{node}.{comp}", body,
                                  "mds.rebuild", REBUILD_COUNTERS)

    # Every export must carry per-node resource gauges for at least one
    # storage node — this is what decomposes "where the bytes went".
    storage = [n for n, comps in nodes.items()
               if isinstance(comps, dict) and "node" in comps
               and "disk_write_bytes" in comps["node"].get("gauges", {})]
    if not storage:
        err(f"{path}.nodes", "no storage node carries node.disk_write_bytes")

    trace = doc.get("trace", {})
    if check_type(f"{path}.trace", trace, dict, "trace"):
        for key, types in TRACE_KEYS.items():
            if key not in trace:
                err(f"{path}.trace", f"missing key '{key}'")
            elif types is bool:
                if not isinstance(trace[key], bool):
                    err(f"{path}.trace.{key}",
                        f"{key} should be bool, got "
                        f"{type(trace[key]).__name__}")
            else:
                check_type(f"{path}.trace.{key}", trace[key], types, key)

    # Sampling-era SLO report: exact per-op-class accounting (100% of
    # traffic, independent of the sample rate) plus streaming latency
    # digests and the sampling/promotion counters.
    if "slo" not in doc:
        err(path, "missing top-level key 'slo'")
    slo = doc.get("slo", {})
    if check_type(f"{path}.slo", slo, dict, "slo"):
        for key, types in (("slo_threshold_ns", int),
                           ("sample_rate", (int, float)),
                           ("traces_started", int),
                           ("traces_sampled", int),
                           ("traces_promoted", int),
                           ("spans_sampled_out", int),
                           ("per_op", dict)):
            if key not in slo:
                err(f"{path}.slo", f"missing key '{key}'")
            else:
                check_type(f"{path}.slo.{key}", slo[key], types, key)
        for op, body in slo.get("per_op", {}).items():
            p = f"{path}.slo.per_op.{op}"
            if not check_type(p, body, dict, "per-op entry"):
                continue
            for key, types in SLO_OP_KEYS.items():
                if key not in body:
                    err(p, f"missing key '{key}'")
                else:
                    check_type(f"{p}.{key}", body[key], types, key)
            if "latency_us" not in body:
                err(p, "missing key 'latency_us'")
            else:
                check_digest(f"{p}.latency_us", body["latency_us"])

    # Per-tenant attribution: top-K rows plus exact totals.  While nothing
    # has been evicted the rows must sum exactly to the totals — that's the
    # whole point of the unconditional total accumulator.
    if "tenants" not in doc:
        err(path, "missing top-level key 'tenants'")
    tenants = doc.get("tenants", {})
    if check_type(f"{path}.tenants", tenants, dict, "tenants"):
        for key, types in (("topk", int), ("tenants_seen", int),
                           ("tenants_evicted", int),
                           ("slo_threshold_ns", int),
                           ("per_tenant", dict), ("total", dict)):
            if key not in tenants:
                err(f"{path}.tenants", f"missing key '{key}'")
            else:
                check_type(f"{path}.tenants.{key}", tenants[key], types, key)

        def check_tenant_stats(p, stats):
            if not check_type(p, stats, dict, "tenant stats"):
                return
            for key, types in TENANT_STAT_KEYS.items():
                if key not in stats:
                    err(p, f"missing key '{key}'")
                else:
                    check_type(f"{p}.{key}", stats[key], types, key)
            if "latency_us" not in stats:
                err(p, "missing key 'latency_us'")
            else:
                check_digest(f"{p}.latency_us", stats["latency_us"])

        per_tenant = tenants.get("per_tenant", {})
        if isinstance(per_tenant, dict):
            for name, row in per_tenant.items():
                p = f"{path}.tenants.per_tenant.{name}"
                if not check_type(p, row, dict, "tenant row"):
                    continue
                for key in ("weight", "weight_error"):
                    if key not in row:
                        err(p, f"missing key '{key}'")
                    else:
                        check_type(f"{p}.{key}", row[key], int, key)
                check_tenant_stats(f"{p}.stats", row.get("stats", {}))
            rows = len(per_tenant)
            cap = tenants.get("topk", 0)
            if isinstance(cap, int) and rows > cap:
                err(f"{path}.tenants.per_tenant",
                    f"{rows} rows exceed topk capacity {cap}")
        total = tenants.get("total", {})
        check_tenant_stats(f"{path}.tenants.total", total)
        if (tenants.get("tenants_evicted") == 0 and isinstance(total, dict)
                and isinstance(per_tenant, dict)):
            for key in TENANT_STAT_KEYS:
                want = total.get(key)
                got = sum(row.get("stats", {}).get(key, 0)
                          for row in per_tenant.values()
                          if isinstance(row, dict))
                if isinstance(want, int) and got != want:
                    err(f"{path}.tenants.per_tenant",
                        f"sum of '{key}' over rows = {got} != total {want} "
                        f"with tenants_evicted == 0")

    # Per-node health verdicts from the periodic evaluator.
    if "health" not in doc:
        err(path, "missing top-level key 'health'")
    health = doc.get("health", {})
    if check_type(f"{path}.health", health, dict, "health"):
        for node, body in health.items():
            p = f"{path}.health.{node}"
            if not check_type(p, body, dict, "node health"):
                continue
            state = body.get("state")
            if state not in HEALTH_STATES:
                err(f"{p}.state", f"state should be one of {HEALTH_STATES}, "
                                  f"got {state!r}")
            if "reason" not in body:
                err(p, "missing key 'reason'")
            else:
                check_type(f"{p}.reason", body["reason"], str, "reason")

    # Optional utilization time series (present when the sampler ran).
    if "timeseries" in doc:
        ts = doc["timeseries"]
        if check_type(f"{path}.timeseries", ts, dict, "timeseries"):
            check_type(f"{path}.timeseries.interval_ns",
                       ts.get("interval_ns", 0), int, "interval_ns")
            series = ts.get("series", {})
            if check_type(f"{path}.timeseries.series", series, dict, "series"):
                for node, metrics in series.items():
                    p = f"{path}.timeseries.series.{node}"
                    if not check_type(p, metrics, dict, "node series"):
                        continue
                    for name, points in metrics.items():
                        pp = f"{p}.{name}"
                        if not check_type(pp, points, list, "points"):
                            continue
                        for j, pt in enumerate(points):
                            if (not isinstance(pt, list) or len(pt) != 2
                                    or not isinstance(pt[0], int)
                                    or not isinstance(pt[1], (int, float))):
                                err(f"{pp}[{j}]",
                                    "sample should be [time_ns, value]")
                                break


# Series the scale sweep must record at every point (bench/bench_scale.cpp).
# (figure, architecture, unit); sojourn percentiles are context, but context
# that silently vanishes is a regression too, so they are required here.
SCALE_SERIES = (
    ("rate", "scale-core", "client-s/s"),
    ("rate", "legacy-core", "client-s/s"),
    ("core_rate", "scale-core", "client-s/s"),
    ("core_rate", "legacy-core", "client-s/s"),
    ("speedup", "event-core", "x"),
    ("stack_speedup", "direct-pnfs", "x"),
    ("p50_sojourn", "scale-core", "s"),
    ("p99_sojourn", "scale-core", "s"),
    ("p50_sojourn", "legacy-core", "s"),
    ("p99_sojourn", "legacy-core", "s"),
    ("peak_concurrency", "scale-core", "sessions"),
    ("events_per_wall_s", "scale-core", "ev/s"),
)


def check_scale_bench(path, records):
    """BENCH_scale.json content contract: every sweep point carries the full
    set of series, rates and speedups are positive, and the big point
    sustains a four-digit concurrent population."""
    by_series = {}
    for rec in records:
        if not isinstance(rec, dict):
            continue
        key = (rec.get("figure"), rec.get("architecture"))
        by_series.setdefault(key, []).append(rec)

    points = sorted({r.get("clients") for recs in by_series.values()
                     for r in recs if isinstance(r.get("clients"), int)})
    if not points:
        err(path, "scale bench has no sweep points")
        return

    for figure, arch, unit in SCALE_SERIES:
        recs = by_series.get((figure, arch))
        if not recs:
            err(path, f"missing scale series {figure}/{arch}")
            continue
        have = sorted(r.get("clients") for r in recs)
        if have != points:
            err(path, f"series {figure}/{arch} covers points {have}, "
                      f"expected {points}")
        for r in recs:
            if r.get("unit") != unit:
                err(path, f"series {figure}/{arch} unit "
                          f"{r.get('unit')!r}, expected {unit!r}")
            if figure in ("rate", "core_rate", "speedup", "stack_speedup",
                          "peak_concurrency", "events_per_wall_s"):
                v = r.get("value")
                if isinstance(v, (int, float)) and v <= 0:
                    err(path, f"series {figure}/{arch} point "
                              f"{r.get('clients')} is non-positive ({v})")

    big = max(points)
    if big >= 1000:
        peaks = [r.get("value")
                 for r in by_series.get(("peak_concurrency", "scale-core"), [])
                 if r.get("clients") == big]
        if peaks and isinstance(peaks[0], (int, float)) and peaks[0] < 1000:
            err(path, f"point {big} peak_concurrency {peaks[0]} < 1000 — "
                      "the sweep no longer sustains a thousand clients")
    else:
        err(path, f"largest sweep point is {big}; the scale bench must "
                  "include a >= 1000-client point")


def check_file(filename):
    try:
        with open(filename, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(filename, f"unreadable or not JSON: {e}")
        return
    if isinstance(doc, dict) and "records" in doc:
        check_type(f"{filename}.bench", doc.get("bench", ""), str, "bench")
        records = doc["records"]
        if not check_type(f"{filename}.records", records, list, "records"):
            return
        for i, rec in enumerate(records):
            p = f"{filename}.records[{i}]"
            if not check_type(p, rec, dict, "record"):
                continue
            for key, types in (("figure", str), ("architecture", str),
                               ("clients", int), ("value", (int, float)),
                               ("unit", str)):
                if key not in rec:
                    err(p, f"missing key '{key}'")
                else:
                    check_type(f"{p}.{key}", rec[key], types, key)
            # Derived figures (e.g. bench_obs_overhead's wall-clock
            # "rate-ratio" series) carry no per-run export: an empty
            # metrics object is allowed, a partial one is not.
            metrics = rec.get("metrics", {})
            if metrics:
                check_metrics_doc(f"{p}.metrics", metrics)
        if doc.get("bench") == "scale":
            check_scale_bench(f"{filename}.records", records)
    else:
        check_metrics_doc(filename, doc)


def main(argv):
    files = []
    i = 1
    while i < len(argv):
        if argv[i] == "--run":
            i += 1
            if i >= len(argv):
                print("--run requires the bench_micro path", file=sys.stderr)
                return 2
            bench = argv[i]
            out = os.path.join(tempfile.mkdtemp(prefix="dpnfs_metrics_"),
                               "metrics.json")
            subprocess.run([bench, f"--metrics-smoke={out}"], check=True)
            files.append(out)
        else:
            files.append(argv[i])
        i += 1
    if not files:
        print(__doc__, file=sys.stderr)
        return 2
    for f in files:
        check_file(f)
    if errors:
        for e in errors:
            print(f"SCHEMA ERROR {e}", file=sys.stderr)
        return 1
    print(f"ok: {len(files)} file(s) match the metrics schema")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
