#!/usr/bin/env python3
"""Validate a dpnfs Chrome/Perfetto trace export (see docs/observability.md).

The export is the Chrome trace_event "JSON object format":

  {"displayTimeUnit": "ns",
   "otherData": {"architecture": str, "spans_dropped": int},
   "traceEvents": [
     {"ph": "M", "name": "process_name"|"thread_name", ...},
     {"ph": "X", "name": str, "cat": str, "pid": int, "tid": int,
      "ts": num, "dur": num,
      "args": {"trace": int, "span": int, "parent": int,
               "queue_wait_ns": int, "send_wait_ns": int, "disk_ns": int,
               "bytes_out": int, "bytes_in": int,
               "sampled": 0|1, "promoted": 0|1}},
     {"ph": "s"|"f", ...flow...}, {"ph": "C", ...counter...}]}

Checks: every complete event carries the span args, span ids are unique,
timestamps are sane (ts >= 0, dur >= 0), and parentage is acyclic within
each trace.

Usage:
  check_trace_schema.py FILE.json [FILE2.json ...]
  check_trace_schema.py --run /path/to/simulate
      (spawns `simulate --arch=2tier ... --trace-out=<tmp>` and additionally
       asserts the 2-tier re-route is visible: some trace touches three or
       more distinct processes — client, pNFS data server, storage daemon)
"""

import json
import os
import subprocess
import sys
import tempfile

PHASES = {"X", "M", "C", "s", "f", "b", "e", "n"}
X_ARGS = ("trace", "span", "parent", "queue_wait_ns", "send_wait_ns",
          "disk_ns", "bytes_out", "bytes_in",
          # Why each span still has detail: head-sampled (1) or tail-
          # promoted (1) — exported as 0/1 ints, Chrome-arg style.
          "sampled", "promoted")

errors = []


def err(path, msg):
    errors.append(f"{path}: {msg}")


def check_x_event(path, ev, spans, by_trace):
    for key, types in (("name", str), ("pid", int), ("tid", int),
                       ("ts", (int, float)), ("dur", (int, float)),
                       ("args", dict)):
        if key not in ev:
            err(path, f"missing key '{key}'")
            return
        if not isinstance(ev[key], types):
            err(path, f"'{key}' should be {types}")
            return
    if ev["ts"] < 0 or ev["dur"] < 0:
        err(path, f"negative ts/dur: ts={ev['ts']} dur={ev['dur']}")
    args = ev["args"]
    for key in X_ARGS:
        if key not in args:
            err(path, f"args missing '{key}'")
            return
        if not isinstance(args[key], int):
            err(path, f"args.{key} should be int")
            return
    span = args["span"]
    if span in spans:
        err(path, f"duplicate span id {span}")
        return
    spans[span] = args
    by_trace.setdefault(args["trace"], {})[span] = (args["parent"], ev["pid"])


def check_parentage(path, by_trace):
    """Parent chains must terminate inside the trace or at an unknown id
    (a dropped span); a cycle means the exporter emitted garbage."""
    for trace, members in by_trace.items():
        for span in members:
            seen = set()
            cur = span
            while cur in members:
                if cur in seen:
                    err(path, f"trace {trace}: parent cycle through span {cur}")
                    break
                seen.add(cur)
                cur = members[cur][0]


def check_file(filename, require_reroute=False):
    try:
        with open(filename, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(filename, f"unreadable or not JSON: {e}")
        return
    if not isinstance(doc, dict):
        err(filename, "top level should be an object")
        return
    other = doc.get("otherData")
    if not isinstance(other, dict) or not isinstance(
            other.get("architecture"), str):
        err(f"{filename}.otherData", "missing architecture")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        err(f"{filename}.traceEvents", "missing or not a list")
        return

    spans = {}
    by_trace = {}
    n_complete = n_meta = 0
    for i, ev in enumerate(events):
        path = f"{filename}.traceEvents[{i}]"
        if not isinstance(ev, dict) or "ph" not in ev:
            err(path, "event should be an object with 'ph'")
            continue
        ph = ev["ph"]
        if ph not in PHASES:
            err(path, f"unknown phase '{ph}'")
        elif ph == "X":
            n_complete += 1
            check_x_event(path, ev, spans, by_trace)
        elif ph == "M":
            n_meta += 1
            if ev.get("name") not in ("process_name", "thread_name"):
                err(path, f"unexpected metadata '{ev.get('name')}'")
            elif not isinstance(ev.get("args", {}).get("name"), str):
                err(path, "metadata args.name missing")

    if n_complete == 0:
        err(filename, "no complete ('X') events — empty timeline")
    if n_meta == 0:
        err(filename, "no process/thread metadata")
    check_parentage(filename, by_trace)

    if require_reroute and not errors:
        # 2-tier evidence: the proxy hop means one logical request crosses
        # client -> data server -> storage daemon, three distinct processes.
        widest = max((len({pid for _, pid in members.values()})
                      for members in by_trace.values()), default=0)
        if widest < 3:
            err(filename,
                f"expected a re-routed trace spanning >=3 processes, "
                f"widest spans {widest}")
    return n_complete


def main(argv):
    files = []
    reroute = set()
    i = 1
    while i < len(argv):
        if argv[i] == "--run":
            i += 1
            if i >= len(argv):
                print("--run requires the simulate path", file=sys.stderr)
                return 2
            simulate = argv[i]
            out = os.path.join(tempfile.mkdtemp(prefix="dpnfs_trace_"),
                               "trace.json")
            subprocess.run(
                [simulate, "--arch=2tier", "--workload=ior-write",
                 "--clients=2", "--bytes=10000000", f"--trace-out={out}"],
                check=True, stdout=subprocess.DEVNULL)
            files.append(out)
            reroute.add(out)
        else:
            files.append(argv[i])
        i += 1
    if not files:
        print(__doc__, file=sys.stderr)
        return 2
    for f in files:
        check_file(f, require_reroute=f in reroute)
    if errors:
        for e in errors:
            print(f"TRACE SCHEMA ERROR {e}", file=sys.stderr)
        return 1
    print(f"ok: {len(files)} file(s) match the trace schema")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
