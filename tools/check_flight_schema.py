#!/usr/bin/env python3
"""Validate a dpnfs flight-recorder dump (see docs/observability.md).

The dump is one JSON object:

  {"capacity": int, "events_recorded": int, "events_dropped": int,
   "events": [{"seq": int, "time_ns": int, "node": str, "component": str,
               "kind": str, "detail": str}, ...]}

Checks: the counter arithmetic holds (resident == recorded - dropped,
resident <= capacity), sequence numbers are strictly increasing and the
newest event's seq equals events_recorded, times are monotone non-decreasing
(simulated time never runs backwards), and every event carries all six
fields with the right types.

Usage:
  check_flight_schema.py FILE.json [FILE2.json ...]
  check_flight_schema.py --run /path/to/simulate
      (runs a seeded chaos workload TWICE with --flight-out, byte-compares
       the two dumps — the determinism contract — validates the schema, and
       requires the recovery ladder to be on record: at least one "restart"
       event plus some client-side recovery event.  Then runs a permanent
       data-server kill under 2-way replication with a spare and requires
       the full loss ladder on record: ds.declared_dead, rebuild.start,
       rebuild.complete, plus a degraded.read/write/commit client event)
"""

import json
import os
import subprocess
import sys
import tempfile

EVENT_KEYS = {
    "seq": int,
    "time_ns": int,
    "node": str,
    "component": str,
    "kind": str,
    "detail": str,
}

errors = []


def err(path, msg):
    errors.append(f"{path}: {msg}")


def check_doc(path, doc):
    if not isinstance(doc, dict):
        err(path, f"dump should be an object, got {type(doc).__name__}")
        return []
    for key in ("capacity", "events_recorded", "events_dropped", "events"):
        if key not in doc:
            err(path, f"missing top-level key '{key}'")
            return []
    for key in ("capacity", "events_recorded", "events_dropped"):
        if isinstance(doc[key], bool) or not isinstance(doc[key], int):
            err(f"{path}.{key}", f"should be int, got "
                                 f"{type(doc[key]).__name__}")
            return []
    events = doc["events"]
    if not isinstance(events, list):
        err(f"{path}.events", "should be a list")
        return []

    if doc["capacity"] < 1:
        err(f"{path}.capacity", "capacity must be >= 1")
    if len(events) != doc["events_recorded"] - doc["events_dropped"]:
        err(f"{path}.events",
            f"{len(events)} resident events != recorded "
            f"{doc['events_recorded']} - dropped {doc['events_dropped']}")
    if len(events) > doc["capacity"]:
        err(f"{path}.events", f"{len(events)} resident events exceed "
                              f"capacity {doc['capacity']}")

    prev_seq = doc["events_dropped"]  # oldest resident is dropped+1
    prev_time = None
    for i, ev in enumerate(events):
        p = f"{path}.events[{i}]"
        if not isinstance(ev, dict):
            err(p, "event should be an object")
            continue
        bad = False
        for key, types in EVENT_KEYS.items():
            if key not in ev:
                err(p, f"missing key '{key}'")
                bad = True
            elif isinstance(ev[key], bool) or not isinstance(ev[key], types):
                err(f"{p}.{key}", f"should be {types.__name__}, got "
                                  f"{type(ev[key]).__name__}")
                bad = True
        if bad:
            continue
        if ev["seq"] != prev_seq + 1:
            err(f"{p}.seq", f"expected {prev_seq + 1}, got {ev['seq']} "
                            "(seqs must be dense and increasing)")
        prev_seq = ev["seq"]
        if prev_time is not None and ev["time_ns"] < prev_time:
            err(f"{p}.time_ns", f"{ev['time_ns']} < previous "
                                f"{prev_time}: simulated time ran backwards")
        prev_time = ev["time_ns"]
        if not ev["kind"]:
            err(f"{p}.kind", "kind must be non-empty")
    if events and events[-1].get("seq") != doc["events_recorded"]:
        err(f"{path}.events", f"newest seq {events[-1].get('seq')} != "
                              f"events_recorded {doc['events_recorded']}")
    return events


def check_file(filename):
    try:
        with open(filename, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(filename, f"unreadable or not JSON: {e}")
        return []
    return check_doc(filename, doc)


def run_simulate(simulate, out):
    # Mirrors the chaos recipe in EXPERIMENTS.md: seeded restarts under a
    # two-tenant mix, small enough for a tier-1 gate.
    subprocess.run(
        [simulate, "--arch=direct", "--workload=tenant-mix", "--clients=4",
         "--bytes=8000000", "--txns=200", "--chaos-seed=11",
         f"--flight-out={out}"],
        check=True, stdout=subprocess.DEVNULL)


def run_kill(simulate, out):
    # Mirrors the permanent-kill recipe in EXPERIMENTS.md: 2-way replication,
    # one node killed for good, a spare for the rebuild service to fill.
    subprocess.run(
        [simulate, "--arch=direct", "--workload=ior-write", "--clients=4",
         "--storage-nodes=5", "--redundancy=mirror", "--replicas=2",
         "--spares=1", "--fault-ds-kill=1", "--fault-at-ms=500",
         "--rebuild-after-ms=800", "--bytes=8000000", "--stripe=262144",
         f"--flight-out={out}"],
        check=True, stdout=subprocess.DEVNULL)


def main(argv):
    files = []
    i = 1
    while i < len(argv):
        if argv[i] == "--run":
            i += 1
            if i >= len(argv):
                print("--run requires the simulate path", file=sys.stderr)
                return 2
            simulate = argv[i]
            tmp = tempfile.mkdtemp(prefix="dpnfs_flight_")
            first = os.path.join(tmp, "flight_a.json")
            second = os.path.join(tmp, "flight_b.json")
            run_simulate(simulate, first)
            run_simulate(simulate, second)
            with open(first, "rb") as fa, open(second, "rb") as fb:
                if fa.read() != fb.read():
                    err(first, "two same-seed runs produced different "
                               "dumps: determinism contract broken")
            events = check_file(first)
            kinds = {ev.get("kind") for ev in events
                     if isinstance(ev, dict)}
            if "restart" not in kinds:
                err(first, "chaos run recorded no 'restart' event "
                           f"(kinds seen: {sorted(k for k in kinds if k)})")
            recovery = {"session.lost", "breaker.trip", "wb.replay",
                        "mds.fallback", "layout.refetch",
                        "verifier.mismatch", "grace.enter", "grace.exit"}
            if not (kinds & recovery):
                err(first, "chaos run recorded no client recovery-ladder "
                           f"event (kinds seen: {sorted(k for k in kinds if k)})")
            files.append(first)  # already checked; keeps the count honest

            # Permanent-kill run: the loss ladder must be on record — the
            # node declared dead, the rebuild bracketed start/complete, and
            # at least one client degraded-mode event in between.
            kill_a = os.path.join(tmp, "kill_a.json")
            kill_b = os.path.join(tmp, "kill_b.json")
            run_kill(simulate, kill_a)
            run_kill(simulate, kill_b)
            with open(kill_a, "rb") as fa, open(kill_b, "rb") as fb:
                if fa.read() != fb.read():
                    err(kill_a, "two permanent-kill runs produced different "
                                "dumps: determinism contract broken")
            kill_events = check_file(kill_a)
            kill_kinds = {ev.get("kind") for ev in kill_events
                          if isinstance(ev, dict)}
            for kind in ("ds.declared_dead", "rebuild.start",
                         "rebuild.complete"):
                if kind not in kill_kinds:
                    err(kill_a, f"permanent-kill run recorded no '{kind}' "
                        f"event (kinds seen: "
                        f"{sorted(k for k in kill_kinds if k)})")
            degraded = {"degraded.read", "degraded.write", "degraded.commit"}
            if not (kill_kinds & degraded):
                err(kill_a, "permanent-kill run recorded no degraded-mode "
                    "client event (kinds seen: "
                    f"{sorted(k for k in kill_kinds if k)})")
            files.append(kill_a)
        else:
            check_file(argv[i])
            files.append(argv[i])
        i += 1
    if not files:
        print(__doc__, file=sys.stderr)
        return 2
    if errors:
        for e in errors:
            print(f"SCHEMA ERROR {e}", file=sys.stderr)
        return 1
    print(f"ok: {len(files)} flight dump(s) match the schema")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
